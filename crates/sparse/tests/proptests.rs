//! Property-based tests for the sparse substrate: every operation is checked
//! against a dense reference on random matrices.

use proptest::prelude::*;
use regenr_sparse::{
    BackendChoice, ChunkPlan, CooBuilder, CsrMatrix, IndexWidthChoice, KernelChoice,
    ParallelConfig, SellSort, WorkerPool, MAX_RHS_BLOCK,
};

/// Random dense matrix plus its CSR image.
fn arb_matrix() -> impl Strategy<Value = (Vec<Vec<f64>>, usize, usize)> {
    (1usize..12, 1usize..12).prop_flat_map(|(n, m)| {
        prop::collection::vec(prop::collection::vec(-5.0f64..5.0, m), n).prop_map(
            move |mut rows| {
                // Sparsify ~half the entries.
                for (i, row) in rows.iter_mut().enumerate() {
                    for (j, v) in row.iter_mut().enumerate() {
                        if (i * 31 + j * 17) % 2 == 0 {
                            *v = 0.0;
                        }
                    }
                }
                (rows, n, m)
            },
        )
    })
}

fn to_csr(rows: &[Vec<f64>], n: usize, m: usize) -> CsrMatrix {
    let mut b = CooBuilder::new(n, m);
    for (i, row) in rows.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                b.push(i, j, v);
            }
        }
    }
    b.build()
}

proptest! {
    #[test]
    fn get_matches_dense((rows, n, m) in arb_matrix()) {
        let c = to_csr(&rows, n, m);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                prop_assert_eq!(c.get(i, j), v);
            }
        }
    }

    #[test]
    fn mul_vec_matches_dense((rows, n, m) in arb_matrix(), seed in 0u64..1000) {
        let c = to_csr(&rows, n, m);
        let x: Vec<f64> = (0..m).map(|j| ((j as u64 + seed) % 7) as f64 - 3.0).collect();
        let want: Vec<f64> = rows
            .iter()
            .map(|row| row.iter().zip(&x).map(|(r, v)| r * v).sum())
            .collect();
        let got = c.mul_vec(&x);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-10, "{g} vs {w}");
        }
    }

    #[test]
    fn vec_mul_is_transpose_mul((rows, n, m) in arb_matrix()) {
        let c = to_csr(&rows, n, m);
        let ct = c.transpose();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut scatter = vec![0.0; m];
        c.vec_mul_into(&x, &mut scatter);
        let gather = ct.mul_vec(&x);
        for (a, b) in scatter.iter().zip(&gather) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_involution((rows, n, m) in arb_matrix()) {
        let c = to_csr(&rows, n, m);
        let tt = c.transpose().transpose();
        prop_assert_eq!(c.nnz(), tt.nnz());
        for (i, j, v) in c.iter() {
            prop_assert_eq!(tt.get(i, j), v);
        }
    }

    #[test]
    fn parallel_product_is_bitwise_serial((rows, n, m) in arb_matrix(), threads in 1usize..6) {
        let c = to_csr(&rows, n, m);
        let x: Vec<f64> = (0..m).map(|j| 1.0 / (j + 1) as f64).collect();
        let mut serial = vec![0.0; n];
        let mut par = vec![0.0; n];
        let mut spawned = vec![0.0; n];
        c.mul_vec_into(&x, &mut serial);
        let cfg = ParallelConfig { min_nnz: 0, threads, kernel: KernelChoice::Auto, ..Default::default() };
        c.mul_vec_parallel_into(&x, &mut par, &cfg);
        prop_assert_eq!(&serial, &par);
        c.mul_vec_spawn_into(&x, &mut spawned, &cfg);
        prop_assert_eq!(&serial, &spawned);
    }

    /// The pooled kernel is bitwise identical to the serial one on random
    /// matrices, for every combination of pool size and chunk count —
    /// including repeated products on a warm pool (the solver loop shape).
    #[test]
    fn pooled_product_is_bitwise_serial(
        (rows, n, m) in arb_matrix(),
        pool_threads in 1usize..5,
        chunks in 1usize..9,
    ) {
        let c = to_csr(&rows, n, m);
        let x: Vec<f64> = (0..m).map(|j| ((j * 13 + 5) % 11) as f64 - 5.0).collect();
        let mut serial = vec![0.0; n];
        c.mul_vec_into(&x, &mut serial);
        let pool = WorkerPool::new(pool_threads);
        let plan = ChunkPlan::new(&c, chunks);
        let mut pooled = vec![1.0; n];
        for _ in 0..3 {
            c.mul_vec_pooled_into(&x, &mut pooled, &plan, &pool);
            prop_assert_eq!(&serial, &pooled);
        }
    }

    /// Every kernel in the suite — forced via the plan — is bitwise
    /// identical to the serial product on random matrices, for every
    /// combination of pool size and chunk count, including repeated
    /// products on a warm pool (the solver loop shape).
    #[test]
    fn every_forced_kernel_is_bitwise_serial(
        (rows, n, m) in arb_matrix(),
        pool_threads in 1usize..5,
        chunks in 1usize..9,
    ) {
        let c = to_csr(&rows, n, m);
        let x: Vec<f64> = (0..m).map(|j| ((j * 13 + 5) % 11) as f64 - 5.0).collect();
        let mut serial = vec![0.0; n];
        c.mul_vec_into(&x, &mut serial);
        let serial_bits: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
        let pool = WorkerPool::new(pool_threads);
        for choice in [
            KernelChoice::Auto,
            KernelChoice::Generic,
            KernelChoice::ShortRow,
            KernelChoice::DiagSplit,
            KernelChoice::Sliced,
        ] {
            let plan = ChunkPlan::with_kernel(&c, chunks, choice);
            let mut pooled = vec![1.0; n];
            for _ in 0..2 {
                c.mul_vec_pooled_into(&x, &mut pooled, &plan, &pool);
                let got: Vec<u64> = pooled.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(&serial_bits, &got, "kernel {:?}", choice);
            }
        }
    }

    /// Every (kernel, backend) pair is bitwise identical to the serial
    /// product on adversarial inputs: random matrices whose row count need
    /// not align with the SIMD lane width, empty and overlong rows (the
    /// sliced layout's tail paths), and input vectors carrying non-finite
    /// values — the cases where an unguarded padded cell or a reordered
    /// reduction would change bits.
    #[test]
    fn every_backend_is_bitwise_serial_on_adversarial_inputs(
        (rows, n, m) in arb_matrix(),
        pool_threads in 1usize..4,
        chunks in 1usize..9,
        poison in 0usize..4,
        long_row in 0usize..12,
    ) {
        let mut rows = rows;
        // One overlong row (every column filled) and one emptied row.
        if n > 1 {
            let lr = long_row % n;
            for (j, v) in rows[lr].iter_mut().enumerate() {
                *v = 0.5 + j as f64 * 1e-3;
            }
            rows[(lr + 1) % n].iter_mut().for_each(|v| *v = 0.0);
        }
        let c = to_csr(&rows, n, m);
        let mut x: Vec<f64> = (0..m).map(|j| ((j * 13 + 5) % 11) as f64 - 5.0).collect();
        match poison {
            0 => x[0] = f64::INFINITY,
            1 => x[m - 1] = f64::NAN,
            2 => x[m / 2] = f64::NEG_INFINITY,
            _ => {}
        }
        let mut serial = vec![0.0; n];
        c.mul_vec_into(&x, &mut serial);
        let serial_bits: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
        let pool = WorkerPool::new(pool_threads);
        for choice in [
            KernelChoice::Auto,
            KernelChoice::ShortRow,
            KernelChoice::DiagSplit,
            KernelChoice::Sliced,
        ] {
            for backend in [
                BackendChoice::Auto,
                BackendChoice::Scalar,
                BackendChoice::Sse2,
                BackendChoice::Avx2,
            ] {
                let plan = ChunkPlan::with_kernel_backend(&c, chunks, choice, backend);
                let mut pooled = vec![1.0; n];
                for _ in 0..2 {
                    c.mul_vec_pooled_into(&x, &mut pooled, &plan, &pool);
                    let got: Vec<u64> = pooled.iter().map(|v| v.to_bits()).collect();
                    prop_assert_eq!(
                        &serial_bits, &got,
                        "kernel {:?} backend {:?} (resolved {:?})",
                        choice, backend, plan.backend()
                    );
                }
            }
        }
    }

    /// Kernel auto-selection is deterministic: a function of the matrix
    /// alone — repeated analyses and different chunk counts always resolve
    /// the same kernel.
    #[test]
    fn kernel_selection_is_deterministic(
        (rows, n, m) in arb_matrix(),
        chunks_a in 1usize..9,
        chunks_b in 1usize..9,
    ) {
        let c = to_csr(&rows, n, m);
        let first = ChunkPlan::new(&c, chunks_a).kernel_kind();
        prop_assert_eq!(first, ChunkPlan::new(&c, chunks_b).kernel_kind());
        prop_assert_eq!(first, ChunkPlan::new(&c, chunks_a).kernel_kind());
        // An independently rebuilt identical matrix selects identically.
        let again = to_csr(&rows, n, m);
        prop_assert_eq!(first, ChunkPlan::new(&again, chunks_b).kernel_kind());
    }

    /// Blocked SpMM over `k` interleaved right-hand sides is bitwise
    /// identical to `k` independent serial `mul_vec_into` products, for
    /// every kernel × backend pair, pool size, chunk count, and block
    /// width — on adversarial inputs (ragged rows, emptied rows, and
    /// non-finite poison values where any reordered reduction or
    /// unguarded padded cell would change bits).
    #[test]
    fn blocked_spmm_is_bitwise_k_serial_columns(
        (rows, n, m) in arb_matrix(),
        pool_threads in 1usize..4,
        chunks in 1usize..9,
        k in 1usize..MAX_RHS_BLOCK + 1,
        poison in 0usize..4,
        long_row in 0usize..12,
    ) {
        let mut rows = rows;
        if n > 1 {
            let lr = long_row % n;
            for (j, v) in rows[lr].iter_mut().enumerate() {
                *v = 0.5 + j as f64 * 1e-3;
            }
            rows[(lr + 1) % n].iter_mut().for_each(|v| *v = 0.0);
        }
        let c = to_csr(&rows, n, m);
        // k distinct columns; poison one entry of one column.
        let mut cols_x: Vec<Vec<f64>> = (0..k)
            .map(|j| (0..m).map(|i| ((i * 13 + 5 + j * 7) % 11) as f64 - 5.0).collect())
            .collect();
        match poison {
            0 => cols_x[0][0] = f64::INFINITY,
            1 => cols_x[k - 1][m - 1] = f64::NAN,
            2 => cols_x[k / 2][m / 2] = f64::NEG_INFINITY,
            _ => {}
        }
        // Serial reference: one mul_vec_into per column.
        let mut want_bits = vec![0u64; n * k];
        for (j, xj) in cols_x.iter().enumerate() {
            let mut yj = vec![0.0; n];
            c.mul_vec_into(xj, &mut yj);
            for (i, v) in yj.iter().enumerate() {
                want_bits[i * k + j] = v.to_bits();
            }
        }
        // Interleave the inputs.
        let mut x = vec![0.0; m * k];
        for (j, xj) in cols_x.iter().enumerate() {
            for (i, v) in xj.iter().enumerate() {
                x[i * k + j] = *v;
            }
        }
        let pool = WorkerPool::new(pool_threads);
        for choice in [
            KernelChoice::Auto,
            KernelChoice::Generic,
            KernelChoice::ShortRow,
            KernelChoice::DiagSplit,
            KernelChoice::Sliced,
        ] {
            for backend in [BackendChoice::Auto, BackendChoice::Scalar, BackendChoice::Avx2] {
                let plan = ChunkPlan::with_kernel_backend(&c, chunks, choice, backend);
                let mut y = vec![1.0; n * k];
                for _ in 0..2 {
                    c.mul_mat_pooled_into(&x, &mut y, &plan, &pool, k);
                    let got: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
                    prop_assert_eq!(
                        &want_bits, &got,
                        "kernel {:?} backend {:?} k {} (resolved {:?}/{:?})",
                        choice, backend, k, plan.kernel_kind(), plan.backend()
                    );
                }
            }
        }
        // The serial blocked entry point obeys the same contract.
        let mut y = vec![1.0; n * k];
        c.mul_mat_into(&x, &mut y, k);
        let got: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(&want_bits, &got, "serial mul_mat_into k {}", k);
    }

    /// SELL-σ row sorting and compact column indices are pure layout
    /// changes: forcing any index width × sort policy produces bitwise
    /// identical products to the serial kernel, for both the 1-vector and
    /// blocked entry points.
    #[test]
    fn sorted_and_compact_layouts_are_bitwise_serial(
        (rows, n, m) in arb_matrix(),
        pool_threads in 1usize..4,
        chunks in 1usize..9,
        k in 1usize..MAX_RHS_BLOCK + 1,
    ) {
        let c = to_csr(&rows, n, m);
        let x1: Vec<f64> = (0..m).map(|j| ((j * 13 + 5) % 11) as f64 - 5.0).collect();
        let mut serial = vec![0.0; n];
        c.mul_vec_into(&x1, &mut serial);
        let serial_bits: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
        let mut xk = vec![0.0; m * k];
        for i in 0..m {
            for j in 0..k {
                xk[i * k + j] = ((i * 13 + 5 + j * 7) % 11) as f64 - 5.0;
            }
        }
        let mut want_k = vec![0u64; n * k];
        for j in 0..k {
            let xj: Vec<f64> = (0..m).map(|i| xk[i * k + j]).collect();
            let mut yj = vec![0.0; n];
            c.mul_vec_into(&xj, &mut yj);
            for (i, v) in yj.iter().enumerate() {
                want_k[i * k + j] = v.to_bits();
            }
        }
        let pool = WorkerPool::new(pool_threads);
        for width in [
            IndexWidthChoice::Auto,
            IndexWidthChoice::W16,
            IndexWidthChoice::W32,
            IndexWidthChoice::W64,
        ] {
            for sort in [SellSort::Auto, SellSort::Always, SellSort::Never] {
                let plan = ChunkPlan::with_options(
                    &c, chunks, KernelChoice::Sliced, BackendChoice::Auto, width, sort,
                );
                let mut y1 = vec![1.0; n];
                c.mul_vec_pooled_into(&x1, &mut y1, &plan, &pool);
                let got1: Vec<u64> = y1.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(
                    &serial_bits, &got1,
                    "width {:?} sort {:?} (resolved {} sorted {})",
                    width, sort, plan.index_width(), plan.sorted()
                );
                let mut yk = vec![1.0; n * k];
                c.mul_mat_pooled_into(&xk, &mut yk, &plan, &pool, k);
                let gotk: Vec<u64> = yk.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(
                    &want_k, &gotk,
                    "blocked width {:?} sort {:?} k {}",
                    width, sort, k
                );
            }
        }
    }

    #[test]
    fn row_sums_match_dense((rows, n, m) in arb_matrix()) {
        let c = to_csr(&rows, n, m);
        for (i, s) in c.row_sums().iter().enumerate() {
            let want: f64 = rows[i].iter().sum();
            prop_assert!((s - want).abs() < 1e-10);
        }
    }

    #[test]
    fn balanced_chunks_partition_rows((rows, n, m) in arb_matrix(), chunks in 1usize..8) {
        let c = to_csr(&rows, n, m);
        let parts = c.balanced_row_chunks(chunks);
        let mut next = 0;
        for p in &parts {
            prop_assert_eq!(p.start, next);
            next = p.end;
        }
        prop_assert_eq!(next, n);
    }
}
