//! Sparse linear algebra for Markov-chain solvers.
//!
//! The whole workspace manipulates two kinds of objects:
//!
//! * CTMC **generators** `Q` (row sums zero, non-negative off-diagonal),
//! * randomized DTMC **transition matrices** `P = I + Q/Λ` (row-stochastic),
//!
//! both stored as [`CsrMatrix`]. Probability distributions are *row* vectors
//! propagated as `πᵀ ← πᵀ P`; for cache-friendly, parallelizable gathers the
//! solvers keep `Pᵀ` in CSR form and compute `π ← Pᵀ·π` (see
//! [`CsrMatrix::mul_vec_into`] and [`CsrMatrix::mul_vec_parallel_into`]).
//!
//! Parallel products distribute disjoint row chunks over a persistent
//! [`WorkerPool`] of parked threads — no locks or atomics inside a product,
//! data-race freedom by construction, and bitwise-identical results to the
//! serial kernel. Each [`ChunkPlan`] also resolves a structure-adaptive SpMV
//! [`kernel`] (short-row, diagonal-split, sliced, or generic) from a one-time
//! analysis of the matrix. The [`Workspace`] arena gives solvers reusable
//! scratch vectors so sweep-heavy workloads stop allocating in their inner
//! loops.

pub mod builder;
pub mod csr;
pub mod kernel;
pub mod parallel;
pub mod pool;
pub mod simd;
pub mod workspace;

pub use builder::CooBuilder;
pub use csr::CsrMatrix;
pub use kernel::{
    IndexWidthChoice, KernelChoice, KernelKind, MatrixProfile, SellSort, MAX_RHS_BLOCK,
};
pub use parallel::{effective_threads, ChunkPlan, ParallelConfig, RhsBlockChoice};
pub use pool::{WorkerPool, WorkerPoolStats};
pub use simd::{Backend, BackendChoice};
pub use workspace::{Workspace, WorkspaceStats};

#[cfg(test)]
mod dense_ref {
    //! Dense reference implementations used only by tests.

    /// Dense matrix–vector product `A·x`.
    pub fn dense_mul_vec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        a.iter()
            .map(|row| row.iter().zip(x).map(|(r, v)| r * v).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense_ref::dense_mul_vec;

    fn random_dense(n: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
        // Small deterministic LCG so the test needs no external RNG.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        (0..n)
            .map(|_| {
                (0..m)
                    .map(|_| {
                        let v = next();
                        if v.abs() < 0.2 {
                            0.0
                        } else {
                            v
                        } // ~40% fill
                    })
                    .collect()
            })
            .collect()
    }

    fn to_csr(a: &[Vec<f64>]) -> CsrMatrix {
        let mut b = CooBuilder::new(a.len(), a[0].len());
        for (i, row) in a.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b.build()
    }

    #[test]
    fn csr_matches_dense_product() {
        for seed in 0..5u64 {
            let a = random_dense(37, 23, seed);
            let m = to_csr(&a);
            let x: Vec<f64> = (0..23).map(|i| (i as f64 * 0.37).sin()).collect();
            let want = dense_mul_vec(&a, &x);
            let mut got = vec![0.0; 37];
            m.mul_vec_into(&x, &mut got);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-12, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let a = random_dense(301, 301, 7);
        let m = to_csr(&a);
        let x: Vec<f64> = (0..301).map(|i| (i as f64).cos()).collect();
        let mut serial = vec![0.0; 301];
        let mut par = vec![0.0; 301];
        m.mul_vec_into(&x, &mut serial);
        let cfg = ParallelConfig {
            min_nnz: 0,
            threads: 4,
            kernel: KernelChoice::Auto,
            ..Default::default()
        };
        m.mul_vec_parallel_into(&x, &mut par, &cfg);
        for (s, p) in serial.iter().zip(&par) {
            assert_eq!(s, p, "parallel result must be bitwise identical per row");
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = random_dense(19, 31, 3);
        let m = to_csr(&a);
        let tt = m.transpose().transpose();
        assert_eq!(m.nrows(), tt.nrows());
        assert_eq!(m.ncols(), tt.ncols());
        let x: Vec<f64> = (0..31).map(|i| i as f64 + 1.0).collect();
        let mut y1 = vec![0.0; 19];
        let mut y2 = vec![0.0; 19];
        m.mul_vec_into(&x, &mut y1);
        tt.mul_vec_into(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-13);
        }
    }
}
