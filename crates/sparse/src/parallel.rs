//! Parallel sparse matrix–vector products.
//!
//! The randomization solvers are SpMV-bound: a single `UR(10⁵ h)` standard-
//! randomization run performs millions of products over the same matrix. The
//! parallel kernels here split the *output* rows into nnz-balanced chunks
//! ([`ChunkPlan`]) and let threads write disjoint slices — no synchronization
//! inside the product, deterministic results (each row is reduced serially,
//! so every parallel product is **bitwise identical** to the serial one).
//!
//! Two execution strategies share that chunk decomposition:
//!
//! * [`CsrMatrix::mul_vec_pooled_into`] — chunks run on a persistent
//!   [`WorkerPool`] of parked threads; this is what the solvers use (via
//!   `Uniformized::stepper`), because repeated products pay only a condvar
//!   wake instead of per-product thread creation.
//! * [`CsrMatrix::mul_vec_spawn_into`] — the original per-call
//!   `std::thread::scope` kernel, kept as the baseline the `repro engine`
//!   target measures the pool against.
//!
//! [`CsrMatrix::mul_vec_parallel_into`] keeps its historical signature and
//! routes through the shared global pool; small matrices fall back to the
//! serial path under [`ParallelConfig::min_nnz`] (a pool wake ≫ product cost
//! there).

use crate::csr::CsrMatrix;
use crate::pool::WorkerPool;

/// Tuning for the parallel SpMV kernels.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Below this nnz the serial kernel is used (dispatch overhead ≫ product
    /// cost).
    pub min_nnz: usize,
    /// Chunk count / maximum SpMV concurrency; `0` means "use available
    /// parallelism".
    pub threads: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            // ~50k nnz ≈ the point where a few microseconds of dispatch
            // overhead stops mattering relative to memory-bound SpMV work.
            min_nnz: 50_000,
            threads: 0,
        }
    }
}

/// Resolves `threads = 0` to the machine's available parallelism.
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// An nnz-balanced decomposition of a matrix's rows into contiguous chunks —
/// the unit of work the parallel kernels distribute. Computing the plan is
/// `O(nrows)`; steppers compute it **once per matrix** and reuse it across
/// millions of products (`Uniformized::stepper` caches plans per chunk
/// count).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChunkPlan {
    ranges: Vec<std::ops::Range<usize>>,
}

impl ChunkPlan {
    /// Plans `matrix`'s rows into at most `chunks` nnz-balanced pieces.
    pub fn new(matrix: &CsrMatrix, chunks: usize) -> ChunkPlan {
        ChunkPlan {
            ranges: matrix.balanced_row_chunks(chunks),
        }
    }

    /// The planned row ranges (contiguous, covering all rows in order).
    pub fn ranges(&self) -> &[std::ops::Range<usize>] {
        &self.ranges
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the plan has no chunks (zero-row matrix).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// A raw mutable pointer that may cross threads: the pooled kernel hands
/// each chunk a disjoint slice of the output vector.
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl CsrMatrix {
    /// Serial kernel for one planned chunk: rows `range` of `y = A·x`.
    #[inline]
    fn mul_chunk(&self, x: &[f64], out: &mut [f64], range: std::ops::Range<usize>) {
        let row_ptr = self.row_ptr();
        let col_idx = self.col_idx();
        let values = self.values();
        for (local, i) in range.enumerate() {
            let mut acc = 0.0;
            for k in row_ptr[i]..row_ptr[i + 1] {
                acc += values[k] * x[col_idx[k] as usize];
            }
            out[local] = acc;
        }
    }

    /// `y = A·x` over a precomputed [`ChunkPlan`] on a persistent
    /// [`WorkerPool`]. Bitwise identical to [`CsrMatrix::mul_vec_into`]
    /// regardless of the pool size or how chunks get claimed; if the pool is
    /// busy (nested use) the chunks simply run on the calling thread.
    ///
    /// # Panics
    /// If `x`/`y` lengths mismatch the matrix, or the plan's rows do not
    /// match `nrows` (a plan from a different matrix).
    pub fn mul_vec_pooled_into(
        &self,
        x: &[f64],
        y: &mut [f64],
        plan: &ChunkPlan,
        pool: &WorkerPool,
    ) {
        assert_eq!(x.len(), self.ncols(), "x length mismatch");
        assert_eq!(y.len(), self.nrows(), "y length mismatch");
        assert_eq!(
            plan.ranges.last().map_or(0, |r| r.end),
            self.nrows(),
            "chunk plan does not cover this matrix's rows"
        );
        let out = SendPtr(y.as_mut_ptr());
        pool.run(plan.len(), move |c| {
            let out = out;
            let range = plan.ranges[c].clone();
            // SAFETY: plan ranges are disjoint and within nrows == y.len(),
            // so each chunk writes a private slice of `y`.
            let slice =
                unsafe { std::slice::from_raw_parts_mut(out.0.add(range.start), range.len()) };
            self.mul_chunk(x, slice, range);
        });
    }

    /// `y = A·x` through the shared global [`WorkerPool`], planning chunks
    /// per call. Falls back to [`CsrMatrix::mul_vec_into`] when the matrix
    /// is small or only one thread is requested. Results are bitwise
    /// identical to the serial product.
    ///
    /// Callers issuing *repeated* products over one matrix should prefer a
    /// cached plan (`Uniformized::stepper` in `regenr-ctmc`) — this entry
    /// point re-plans every call.
    pub fn mul_vec_parallel_into(&self, x: &[f64], y: &mut [f64], cfg: &ParallelConfig) {
        assert_eq!(x.len(), self.ncols(), "x length mismatch");
        assert_eq!(y.len(), self.nrows(), "y length mismatch");
        let threads = effective_threads(cfg.threads);
        if self.nnz() < cfg.min_nnz || threads <= 1 {
            self.mul_vec_into(x, y);
            return;
        }
        let plan = ChunkPlan::new(self, threads);
        self.mul_vec_pooled_into(x, y, &plan, WorkerPool::global());
    }

    /// `y = A·x` spawning scoped threads **per call** over nnz-balanced row
    /// chunks — the pre-pool strategy, kept as the measurable baseline (the
    /// `repro engine` target reports pool vs per-call-spawn wall times).
    /// Falls back to [`CsrMatrix::mul_vec_into`] under the same conditions
    /// as the pooled path; bitwise identical results.
    pub fn mul_vec_spawn_into(&self, x: &[f64], y: &mut [f64], cfg: &ParallelConfig) {
        assert_eq!(x.len(), self.ncols(), "x length mismatch");
        assert_eq!(y.len(), self.nrows(), "y length mismatch");
        let threads = effective_threads(cfg.threads);
        if self.nnz() < cfg.min_nnz || threads <= 1 {
            self.mul_vec_into(x, y);
            return;
        }
        let chunks = self.balanced_row_chunks(threads);
        // Split `y` into disjoint mutable slices matching the row chunks.
        std::thread::scope(|scope| {
            let mut rest = y;
            let mut offset = 0usize;
            for chunk in &chunks {
                let (head, tail) = rest.split_at_mut(chunk.end - offset);
                offset = chunk.end;
                rest = tail;
                let chunk = chunk.clone();
                scope.spawn(move || self.mul_chunk(x, head, chunk));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CooBuilder;

    fn band_matrix(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0 + i as f64 * 1e-3);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.push(i, i + 1, -0.5);
            }
        }
        b.build()
    }

    #[test]
    fn parallel_equals_serial_various_thread_counts() {
        let n = 997;
        let m = band_matrix(n);
        let x: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let mut want = vec![0.0; n];
        m.mul_vec_into(&x, &mut want);
        for threads in [1, 2, 3, 8, 64] {
            let cfg = ParallelConfig {
                min_nnz: 0,
                threads,
            };
            let mut got = vec![0.0; n];
            m.mul_vec_parallel_into(&x, &mut got, &cfg);
            assert_eq!(got, want, "pooled threads={threads}");
            let mut spawned = vec![0.0; n];
            m.mul_vec_spawn_into(&x, &mut spawned, &cfg);
            assert_eq!(spawned, want, "spawn threads={threads}");
        }
    }

    #[test]
    fn pooled_with_explicit_plan_and_pool() {
        let n = 503;
        let m = band_matrix(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut want = vec![0.0; n];
        m.mul_vec_into(&x, &mut want);
        for pool_threads in [1, 2, 5] {
            let pool = WorkerPool::new(pool_threads);
            for chunks in [1, 2, 7, 32] {
                let plan = ChunkPlan::new(&m, chunks);
                let mut got = vec![0.0; n];
                // Repeated products on the same warm pool and plan.
                for _ in 0..3 {
                    m.mul_vec_pooled_into(&x, &mut got, &plan, &pool);
                }
                assert_eq!(got, want, "pool={pool_threads} chunks={chunks}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "chunk plan does not cover")]
    fn plan_from_wrong_matrix_is_rejected() {
        let a = band_matrix(10);
        let b = band_matrix(20);
        let plan = ChunkPlan::new(&a, 2);
        let mut y = vec![0.0; 20];
        b.mul_vec_pooled_into(&[1.0; 20], &mut y, &plan, WorkerPool::global());
    }

    #[test]
    fn small_matrix_uses_serial_path() {
        let m = band_matrix(4);
        let cfg = ParallelConfig::default(); // min_nnz = 50k > nnz
        let mut y = vec![0.0; 4];
        m.mul_vec_parallel_into(&[1.0; 4], &mut y, &cfg);
        let mut want = vec![0.0; 4];
        m.mul_vec_into(&[1.0; 4], &mut want);
        assert_eq!(y, want);
    }

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn more_threads_than_rows() {
        let m = band_matrix(3);
        let cfg = ParallelConfig {
            min_nnz: 0,
            threads: 16,
        };
        let mut y = vec![0.0; 3];
        m.mul_vec_parallel_into(&[1.0, 2.0, 3.0], &mut y, &cfg);
        let mut want = vec![0.0; 3];
        m.mul_vec_into(&[1.0, 2.0, 3.0], &mut want);
        assert_eq!(y, want);
    }
}
