//! Parallel sparse matrix–vector products.
//!
//! The randomization solvers are SpMV-bound: a single `UR(10⁵ h)` standard-
//! randomization run performs millions of products over the same matrix. The
//! parallel kernel here splits the *output* rows into nnz-balanced chunks and
//! lets scoped threads write disjoint slices — no synchronization inside the
//! product, deterministic results (each row is reduced serially, so the
//! parallel product is bitwise identical to the serial one).
//!
//! Spawning threads per product would dominate for small matrices, so the
//! kernel falls back to the serial path under [`ParallelConfig::min_nnz`].

use crate::csr::CsrMatrix;

/// Tuning for [`CsrMatrix::mul_vec_parallel_into`].
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Below this nnz the serial kernel is used (thread spawn ≫ product cost).
    pub min_nnz: usize,
    /// Worker thread count; `0` means "use available parallelism".
    pub threads: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            // ~50k nnz ≈ the point where a few microseconds of spawn overhead
            // stops mattering relative to memory-bound SpMV work.
            min_nnz: 50_000,
            threads: 0,
        }
    }
}

/// Resolves `threads = 0` to the machine's available parallelism.
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

impl CsrMatrix {
    /// `y = A·x` using scoped threads over nnz-balanced row chunks.
    ///
    /// Falls back to [`CsrMatrix::mul_vec_into`] when the matrix is small or
    /// only one thread is available. Results are bitwise identical to the
    /// serial product.
    pub fn mul_vec_parallel_into(&self, x: &[f64], y: &mut [f64], cfg: &ParallelConfig) {
        assert_eq!(x.len(), self.ncols(), "x length mismatch");
        assert_eq!(y.len(), self.nrows(), "y length mismatch");
        let threads = effective_threads(cfg.threads);
        if self.nnz() < cfg.min_nnz || threads <= 1 {
            self.mul_vec_into(x, y);
            return;
        }
        let chunks = self.balanced_row_chunks(threads);
        // Split `y` into disjoint mutable slices matching the row chunks.
        std::thread::scope(|scope| {
            let mut rest = y;
            let mut offset = 0usize;
            for chunk in &chunks {
                let (head, tail) = rest.split_at_mut(chunk.end - offset);
                offset = chunk.end;
                rest = tail;
                let chunk = chunk.clone();
                scope.spawn(move || {
                    let row_ptr = self.row_ptr();
                    let col_idx = self.col_idx();
                    let values = self.values();
                    for (local, i) in chunk.clone().enumerate() {
                        let mut acc = 0.0;
                        for k in row_ptr[i]..row_ptr[i + 1] {
                            acc += values[k] * x[col_idx[k] as usize];
                        }
                        head[local] = acc;
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CooBuilder;

    fn band_matrix(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0 + i as f64 * 1e-3);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.push(i, i + 1, -0.5);
            }
        }
        b.build()
    }

    #[test]
    fn parallel_equals_serial_various_thread_counts() {
        let n = 997;
        let m = band_matrix(n);
        let x: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let mut want = vec![0.0; n];
        m.mul_vec_into(&x, &mut want);
        for threads in [1, 2, 3, 8, 64] {
            let cfg = ParallelConfig {
                min_nnz: 0,
                threads,
            };
            let mut got = vec![0.0; n];
            m.mul_vec_parallel_into(&x, &mut got, &cfg);
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn small_matrix_uses_serial_path() {
        let m = band_matrix(4);
        let cfg = ParallelConfig::default(); // min_nnz = 50k > nnz
        let mut y = vec![0.0; 4];
        m.mul_vec_parallel_into(&[1.0; 4], &mut y, &cfg);
        let mut want = vec![0.0; 4];
        m.mul_vec_into(&[1.0; 4], &mut want);
        assert_eq!(y, want);
    }

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn more_threads_than_rows() {
        let m = band_matrix(3);
        let cfg = ParallelConfig {
            min_nnz: 0,
            threads: 16,
        };
        let mut y = vec![0.0; 3];
        m.mul_vec_parallel_into(&[1.0, 2.0, 3.0], &mut y, &cfg);
        let mut want = vec![0.0; 3];
        m.mul_vec_into(&[1.0, 2.0, 3.0], &mut want);
        assert_eq!(y, want);
    }
}
