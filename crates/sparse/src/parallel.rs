//! Parallel sparse matrix–vector products.
//!
//! The randomization solvers are SpMV-bound: a single `UR(10⁵ h)` standard-
//! randomization run performs millions of products over the same matrix. The
//! parallel kernels here split the *output* rows into nnz-balanced chunks
//! ([`ChunkPlan`]) and let threads write disjoint slices — no synchronization
//! inside the product, deterministic results (each row is reduced serially,
//! so every parallel product is **bitwise identical** to the serial one).
//!
//! A [`ChunkPlan`] is more than the row ranges: at construction it analyzes
//! the matrix once and resolves a structure-adaptive [`Kernel`] (see
//! [`crate::kernel`]) — generic CSR, unchecked short-row, diagonal-split, or
//! a sliced SELL-like layout — plus the execution [`Backend`] it runs on
//! (scalar, or an explicit-SIMD variant under the `simd` feature; see
//! [`crate::simd`]) — that every chunk then executes. Steppers compute the
//! plan **once per matrix** and reuse it across millions of products
//! (`Uniformized::stepper` in `regenr-ctmc` caches plans per
//! `(chunk count, kernel choice, backend choice)`).
//!
//! Two execution strategies share that chunk decomposition:
//!
//! * [`CsrMatrix::mul_vec_pooled_into`] — chunks run on a persistent
//!   [`WorkerPool`] of parked threads; this is what the solvers use (via
//!   `Uniformized::stepper`), because repeated products pay only a condvar
//!   wake instead of per-product thread creation.
//! * [`CsrMatrix::mul_vec_spawn_into`] — the original per-call
//!   `std::thread::scope` kernel, kept as the baseline the `repro engine`
//!   target measures the pool against. It derives its chunk bounds from the
//!   same [`ChunkPlan`] (always with the generic kernel), so the baseline
//!   and the pooled path can never disagree about the decomposition.
//!
//! [`CsrMatrix::mul_vec_parallel_into`] keeps its historical signature and
//! routes through the shared global pool; small matrices fall back to the
//! serial path under [`ParallelConfig::min_nnz`] (a pool wake ≫ product cost
//! there).

use crate::csr::CsrMatrix;
use crate::kernel::{IndexWidthChoice, Kernel, KernelChoice, KernelKind, SellSort, MAX_RHS_BLOCK};
use crate::pool::WorkerPool;
use crate::simd::{Backend, BackendChoice};

/// How many right-hand sides one streaming pass of the matrix should move
/// (blocked SpMM). The matrix is the bandwidth bottleneck: stepping `k`
/// vectors per pass amortizes the stream over `k` results, so per-vector
/// cost drops nearly `k`-fold once the kernels are memory-bound. Affects
/// speed only — each of the `k` columns is accumulated exactly as the
/// serial single-vector product would, so every column stays bitwise
/// identical to [`CsrMatrix::mul_vec_into`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RhsBlockChoice {
    /// Let the caller's grouping logic pick a width **per resolved kernel**
    /// (see [`RhsBlockChoice::auto_width`]) whenever at least two
    /// compatible computations can share a pass, else serial.
    #[default]
    Auto,
    /// A fixed block width (1, 2, 4, or 8); `1` disables blocking.
    Fixed(usize),
}

impl RhsBlockChoice {
    /// Parses `"auto" | "1" | "2" | "4" | "8"`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(Self::Auto),
            "1" => Ok(Self::Fixed(1)),
            "2" => Ok(Self::Fixed(2)),
            "4" => Ok(Self::Fixed(4)),
            "8" => Ok(Self::Fixed(8)),
            other => Err(format!(
                "unknown rhs_block {other:?} (expected auto, 1, 2, 4, or 8)"
            )),
        }
    }

    /// The canonical spelling [`RhsBlockChoice::parse`] accepts.
    pub fn name(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Fixed(1) => "1",
            Self::Fixed(2) => "2",
            Self::Fixed(4) => "4",
            Self::Fixed(8) => "8",
            Self::Fixed(_) => "fixed",
        }
    }

    /// The measured `Auto` block width for each resolved kernel (the
    /// blocked-RHS ablation in `repro kernels` / `results/kernels.csv`):
    /// shortrow's per-cell speedup keeps growing through `k = 8` (2.19× at
    /// G=40, 2.83× at G=20 over `k = 1`, vs 1.99×/2.43× at `k = 4`) because
    /// its bitwise in-order reduction is latency-bound and wider blocks hide
    /// more of it; generic, diagsplit, and sliced stay at the all-round
    /// `k = 4` — their measured blocked rows plateau there and wider
    /// interleaving starts thrashing the per-row accumulator registers.
    pub fn auto_width(kind: KernelKind) -> usize {
        match kind {
            KernelKind::ShortRow => MAX_RHS_BLOCK,
            KernelKind::Generic | KernelKind::DiagSplit | KernelKind::Sliced => 4,
        }
    }

    /// The width the caller's *grouping* stage should chunk compatible
    /// computations to, before the kernel is resolved: `Auto` groups up to
    /// [`MAX_RHS_BLOCK`] (execution narrows to
    /// [`RhsBlockChoice::resolve_for`]'s per-kernel width once the kernel
    /// is known), fixed widths are clamped to `[1, MAX_RHS_BLOCK]`.
    pub fn plan_width(self, group: usize) -> usize {
        match self {
            Self::Auto => {
                if group >= 2 {
                    MAX_RHS_BLOCK
                } else {
                    1
                }
            }
            Self::Fixed(k) => k.clamp(1, MAX_RHS_BLOCK),
        }
    }

    /// Resolves the *execution* block width for a group of `group`
    /// compatible computations running on kernel `kind`: `Auto` uses the
    /// per-kernel [`RhsBlockChoice::auto_width`] table when there is
    /// anything to group, fixed widths are clamped to
    /// `[1, MAX_RHS_BLOCK]`.
    pub fn resolve_for(self, kind: KernelKind, group: usize) -> usize {
        match self {
            Self::Auto => {
                if group >= 2 {
                    Self::auto_width(kind)
                } else {
                    1
                }
            }
            Self::Fixed(k) => k.clamp(1, MAX_RHS_BLOCK),
        }
    }
}

/// Tuning for the parallel SpMV kernels.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Below this nnz the serial kernel is used (dispatch overhead ≫ product
    /// cost).
    pub min_nnz: usize,
    /// Chunk count / maximum SpMV concurrency; `0` means "use available
    /// parallelism".
    pub threads: usize,
    /// Which SpMV kernel plan-driven products run (steppers and explicit
    /// [`ChunkPlan`]s) — [`KernelChoice::Auto`] analyzes the matrix once
    /// per plan and picks; a forced value skips the analysis. The per-call
    /// conveniences ([`CsrMatrix::mul_vec_parallel_into`],
    /// [`CsrMatrix::mul_vec_spawn_into`]) ignore this field and always run
    /// the generic kernel: they re-plan every call, where even the
    /// layout-free kernels' one-time column validation would rival the
    /// product it serves. Every kernel is bitwise identical to the serial
    /// product, so this knob affects speed only.
    pub kernel: KernelChoice,
    /// Blocked-RHS stepping width for callers that can batch compatible
    /// computations over one matrix (see [`RhsBlockChoice`]). Speed only:
    /// every blocked column is bitwise identical to the serial product.
    pub rhs_block: RhsBlockChoice,
    /// Column-index storage width for the layout-backed kernels (see
    /// [`IndexWidthChoice`]): `u16` halves index traffic on matrices
    /// narrow enough to address, and is widened transparently otherwise.
    pub index_width: IndexWidthChoice,
    /// SELL-σ row sorting for the sliced layout (see [`SellSort`]):
    /// whether rows are length-sorted within σ-windows before slicing.
    /// Results are scattered back through the permutation, so sorting is
    /// invisible in every output bit.
    pub sell_sort: SellSort,
    /// Which execution backend the resolved kernel runs
    /// ([`BackendChoice::Auto`] probes the CPU once per process and takes
    /// the widest supported; forced values are clamped to the hardware —
    /// see [`crate::simd`]). Only the shortrow and sliced kernels have
    /// SIMD variants; generic and diagsplit always run scalar. Like the
    /// kernel knob this affects speed only: every backend is bitwise
    /// identical to the serial product.
    pub backend: BackendChoice,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            // ~50k nnz ≈ the point where a few microseconds of dispatch
            // overhead stops mattering relative to memory-bound SpMV work.
            min_nnz: 50_000,
            threads: 0,
            kernel: KernelChoice::Auto,
            rhs_block: RhsBlockChoice::Auto,
            index_width: IndexWidthChoice::Auto,
            sell_sort: SellSort::Auto,
            backend: BackendChoice::Auto,
        }
    }
}

/// Resolves `threads = 0` to the machine's available parallelism.
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// An nnz-balanced decomposition of a matrix's rows into contiguous chunks —
/// the unit of work the parallel kernels distribute — plus the resolved
/// structure-adaptive [`Kernel`] every chunk executes. Computing the plan is
/// `O(nrows + nnz)` (one analysis pass, plus layout construction for the
/// layout-backed kernels); steppers compute it **once per matrix** and reuse
/// it across millions of products.
#[derive(Clone, Debug)]
pub struct ChunkPlan {
    ranges: Vec<std::ops::Range<usize>>,
    kernel: Kernel,
    nrows: usize,
    nnz: usize,
    /// Content signature of the build matrix (see
    /// [`CsrMatrix::content_sig`]), recorded only for layout-backed
    /// kernels: those embed a copy of the matrix's values, so such a plan
    /// must never be used with a different matrix — not even one of
    /// identical sparsity. Layout-free plans skip the signature entirely
    /// (they read every value from the matrix they are handed, and the
    /// `O(nnz)` hash would dominate a one-shot product).
    sig: Option<u64>,
}

impl ChunkPlan {
    /// Plans `matrix`'s rows into at most `chunks` nnz-balanced pieces,
    /// auto-selecting the kernel from the matrix's structure (and the
    /// backend from the CPU).
    pub fn new(matrix: &CsrMatrix, chunks: usize) -> ChunkPlan {
        Self::with_kernel(matrix, chunks, KernelChoice::Auto)
    }

    /// Like [`ChunkPlan::new`] with an explicit kernel choice (forced
    /// choices skip the structure analysis).
    pub fn with_kernel(matrix: &CsrMatrix, chunks: usize, choice: KernelChoice) -> ChunkPlan {
        Self::with_kernel_backend(matrix, chunks, choice, BackendChoice::Auto)
    }

    /// Like [`ChunkPlan::with_kernel`] with an explicit execution backend
    /// (clamped to what the CPU supports — see [`crate::simd::resolve`]).
    pub fn with_kernel_backend(
        matrix: &CsrMatrix,
        chunks: usize,
        choice: KernelChoice,
        backend: BackendChoice,
    ) -> ChunkPlan {
        Self::with_options(
            matrix,
            chunks,
            choice,
            backend,
            IndexWidthChoice::Auto,
            SellSort::Auto,
        )
    }

    /// Like [`ChunkPlan::with_kernel_backend`] with explicit layout options:
    /// a column-index storage width (widened transparently when the matrix
    /// is too wide for the request) and the SELL-σ row-sorting policy for
    /// the sliced layout. Layout options affect speed and plan bytes only —
    /// never an output bit.
    pub fn with_options(
        matrix: &CsrMatrix,
        chunks: usize,
        choice: KernelChoice,
        backend: BackendChoice,
        width: IndexWidthChoice,
        sort: SellSort,
    ) -> ChunkPlan {
        let kernel = Kernel::build_with(matrix, choice, backend, width, sort);
        let sig = kernel.embeds_values().then(|| matrix.content_sig());
        ChunkPlan {
            ranges: matrix.balanced_row_chunks(chunks),
            kernel,
            nrows: matrix.nrows(),
            nnz: matrix.nnz(),
            sig,
        }
    }

    /// Rebinds this plan to `matrix`: a matrix with the **identical
    /// sparsity structure** as `donor` (the matrix this plan was built
    /// from) but new values. The nnz-balanced chunk ranges, the resolved
    /// kernel kind/backend, the compact-index decision, and the SELL-σ
    /// sort/permutation all carry over unchanged — each is a deterministic
    /// function of the structure alone — and only the value-embedding
    /// layouts are refilled from `matrix` (an `O(nnz)` copy instead of the
    /// full profile-analyze + layout-build pass). The returned plan records
    /// `matrix`'s content signature, so it guards its new matrix exactly
    /// like a freshly built plan.
    ///
    /// # Panics
    /// If this plan was not built from `donor`, or `donor` and `matrix`
    /// differ in shape, row pointers, or column indices — rebinding across
    /// structures would silently compute garbage, so the structure match is
    /// asserted, not assumed.
    pub fn rebind(&self, donor: &CsrMatrix, matrix: &CsrMatrix) -> ChunkPlan {
        self.check_matrix(donor);
        assert!(
            donor.nrows() == matrix.nrows()
                && donor.ncols() == matrix.ncols()
                && donor.row_ptr() == matrix.row_ptr()
                && donor.col_idx() == matrix.col_idx(),
            "plan rebind requires identical sparsity structure"
        );
        let kernel = self.kernel.rebind(matrix);
        let sig = kernel.embeds_values().then(|| matrix.content_sig());
        ChunkPlan {
            ranges: self.ranges.clone(),
            kernel,
            nrows: self.nrows,
            nnz: self.nnz,
            sig,
        }
    }

    /// The planned row ranges (contiguous, covering all rows in order).
    pub fn ranges(&self) -> &[std::ops::Range<usize>] {
        &self.ranges
    }

    /// Number of chunks.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the plan has no chunks (zero-row matrix).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The kernel this plan resolved (selection is deterministic: a function
    /// of the matrix alone, never of the chunk count).
    pub fn kernel_kind(&self) -> KernelKind {
        self.kernel.kind()
    }

    /// The execution backend the resolved kernel runs on (scalar unless the
    /// `simd` feature is active, the target is `x86_64`, and the kernel has
    /// a vector variant).
    pub fn backend(&self) -> Backend {
        self.kernel.backend()
    }

    /// The resolved column-index storage width in bits (16 when the layout
    /// stores compact `u16` indices, else 32 — the CSR native width).
    pub fn index_width(&self) -> u8 {
        self.kernel.index_width()
    }

    /// Whether the resolved layout is SELL-σ row-sorted.
    pub fn sorted(&self) -> bool {
        self.kernel.sorted()
    }

    /// The resolved kernel.
    pub(crate) fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Heap bytes held by the kernel's auxiliary layout (zero for the
    /// layout-free kernels). Callers accounting a cached matrix's footprint
    /// add this on top of the matrix's own bytes.
    pub fn kernel_bytes(&self) -> usize {
        self.kernel.layout_bytes()
    }

    /// Panics unless this plan may be used with `matrix`. Shape and nnz
    /// are always checked; for layout-backed kernels content equality is
    /// additionally checked via the memoized [`CsrMatrix::content_sig`]
    /// (`O(1)` after the matrix's first product), because those kernels
    /// would answer with the *build* matrix's values — a silently wrong
    /// product — if a same-sparsity different-values matrix were accepted.
    /// Layout-free kernels are value-correct for any compatible matrix.
    fn check_matrix(&self, matrix: &CsrMatrix) {
        assert!(
            self.nrows == matrix.nrows() && self.nnz == matrix.nnz(),
            "chunk plan does not cover this matrix's rows"
        );
        if let Some(sig) = self.sig {
            assert!(
                sig == matrix.content_sig(),
                "chunk plan was built from a different matrix (equal shape, different content)"
            );
        }
    }
}

/// A raw mutable pointer that may cross threads: the pooled kernel hands
/// each chunk a disjoint slice of the output vector.
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl CsrMatrix {
    /// Serial generic kernel for one planned chunk: rows `range` of
    /// `y = A·x`. The spawn baseline runs this directly; pooled products go
    /// through the plan's resolved [`Kernel`] instead. One implementation
    /// for both paths — the bitwise-identity contract hinges on a single
    /// generic ground truth.
    #[inline]
    fn mul_chunk(&self, x: &[f64], out: &mut [f64], range: std::ops::Range<usize>) {
        crate::kernel::mul_rows_generic(self, x, out, range);
    }

    /// `y = A·x` over a precomputed [`ChunkPlan`] on a persistent
    /// [`WorkerPool`], through the plan's resolved kernel. Bitwise identical
    /// to [`CsrMatrix::mul_vec_into`] regardless of the kernel, the pool
    /// size, or how chunks get claimed; single-chunk plans skip the pool
    /// entirely and run the kernel on the calling thread.
    ///
    /// # Panics
    /// If `x`/`y` lengths mismatch the matrix, or the plan was built from a
    /// different matrix (shape/nnz mismatch).
    pub fn mul_vec_pooled_into(
        &self,
        x: &[f64],
        y: &mut [f64],
        plan: &ChunkPlan,
        pool: &WorkerPool,
    ) {
        assert_eq!(x.len(), self.ncols(), "x length mismatch");
        assert_eq!(y.len(), self.nrows(), "y length mismatch");
        plan.check_matrix(self);
        if plan.len() <= 1 {
            if let Some(range) = plan.ranges.first() {
                // Same fault name as the pooled path: single-chunk plans
                // (1-core machines) must still be able to inject a chunk
                // death for the supervisor's recovery story.
                regenr_failpoint::failpoint!("pool-chunk");
                plan.kernel().mul_rows(self, x, y, range.clone());
            }
            return;
        }
        let out = SendPtr(y.as_mut_ptr());
        pool.run(plan.len(), move |c| {
            let out = out;
            let range = plan.ranges[c].clone();
            // SAFETY: plan ranges are disjoint and within nrows == y.len(),
            // so each chunk writes a private slice of `y`.
            let slice =
                unsafe { std::slice::from_raw_parts_mut(out.0.add(range.start), range.len()) };
            plan.kernel().mul_rows(self, x, slice, range);
        });
    }

    /// Blocked `Y = A·X` for `k` interleaved right-hand sides over a
    /// precomputed [`ChunkPlan`] on a persistent [`WorkerPool`]: `x` holds
    /// `ncols` rows of `k` columns (`x[c*k + j]`), `y` receives `nrows`
    /// rows of `k` columns. One streaming pass of the matrix moves all `k`
    /// vectors, which is what breaks the bandwidth wall for multi-horizon
    /// sweeps. Every column is bitwise identical to the serial
    /// [`CsrMatrix::mul_vec_into`] on that column alone, regardless of the
    /// kernel, backend, block width, pool size, or chunking.
    ///
    /// # Panics
    /// If `k` is 0 or exceeds [`MAX_RHS_BLOCK`], `x`/`y` lengths mismatch
    /// `ncols*k`/`nrows*k`, or the plan was built from a different matrix.
    pub fn mul_mat_pooled_into(
        &self,
        x: &[f64],
        y: &mut [f64],
        plan: &ChunkPlan,
        pool: &WorkerPool,
        k: usize,
    ) {
        assert!(
            (1..=MAX_RHS_BLOCK).contains(&k),
            "rhs block {k} out of range"
        );
        if k == 1 {
            return self.mul_vec_pooled_into(x, y, plan, pool);
        }
        assert_eq!(x.len(), self.ncols() * k, "x length mismatch");
        assert_eq!(y.len(), self.nrows() * k, "y length mismatch");
        plan.check_matrix(self);
        if plan.len() <= 1 {
            if let Some(range) = plan.ranges.first() {
                regenr_failpoint::failpoint!("pool-chunk");
                plan.kernel().mul_rows_block(self, x, y, range.clone(), k);
            }
            return;
        }
        let out = SendPtr(y.as_mut_ptr());
        pool.run(plan.len(), move |c| {
            let out = out;
            let range = plan.ranges[c].clone();
            // SAFETY: plan ranges are disjoint and within nrows, so each
            // chunk writes a private `k`-column slice of `y`.
            let slice = unsafe {
                std::slice::from_raw_parts_mut(out.0.add(range.start * k), range.len() * k)
            };
            plan.kernel().mul_rows_block(self, x, slice, range, k);
        });
    }

    /// `y = A·x` through the shared global [`WorkerPool`], planning chunks
    /// per call. Falls back to [`CsrMatrix::mul_vec_into`] when the matrix
    /// is small or only one thread is requested. Results are bitwise
    /// identical to the serial product.
    ///
    /// Callers issuing *repeated* products over one matrix should prefer a
    /// cached plan (`Uniformized::stepper` in `regenr-ctmc`) — this entry
    /// point re-plans every call, so it always uses the generic kernel (a
    /// per-call layout build would dwarf the product it serves).
    pub fn mul_vec_parallel_into(&self, x: &[f64], y: &mut [f64], cfg: &ParallelConfig) {
        assert_eq!(x.len(), self.ncols(), "x length mismatch");
        assert_eq!(y.len(), self.nrows(), "y length mismatch");
        let threads = effective_threads(cfg.threads);
        if self.nnz() < cfg.min_nnz || threads <= 1 {
            self.mul_vec_into(x, y);
            return;
        }
        let plan = ChunkPlan::with_kernel(self, threads, KernelChoice::Generic);
        self.mul_vec_pooled_into(x, y, &plan, WorkerPool::global());
    }

    /// `y = A·x` spawning scoped threads **per call** over nnz-balanced row
    /// chunks — the pre-pool strategy, kept as the measurable baseline (the
    /// `repro engine` target reports pool vs per-call-spawn wall times).
    /// The chunk bounds come from the same [`ChunkPlan`] the pooled path
    /// uses; only the execution strategy differs. Falls back to
    /// [`CsrMatrix::mul_vec_into`] under the same conditions as the pooled
    /// path; bitwise identical results.
    pub fn mul_vec_spawn_into(&self, x: &[f64], y: &mut [f64], cfg: &ParallelConfig) {
        assert_eq!(x.len(), self.ncols(), "x length mismatch");
        assert_eq!(y.len(), self.nrows(), "y length mismatch");
        let threads = effective_threads(cfg.threads);
        if self.nnz() < cfg.min_nnz || threads <= 1 {
            self.mul_vec_into(x, y);
            return;
        }
        let plan = ChunkPlan::with_kernel(self, threads, KernelChoice::Generic);
        // Split `y` into disjoint mutable slices matching the row chunks.
        std::thread::scope(|scope| {
            let mut rest = y;
            let mut offset = 0usize;
            for chunk in plan.ranges() {
                let (head, tail) = rest.split_at_mut(chunk.end - offset);
                offset = chunk.end;
                rest = tail;
                let chunk = chunk.clone();
                scope.spawn(move || self.mul_chunk(x, head, chunk));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CooBuilder;

    fn band_matrix(n: usize) -> CsrMatrix {
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0 + i as f64 * 1e-3);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.push(i, i + 1, -0.5);
            }
        }
        b.build()
    }

    #[test]
    fn parallel_equals_serial_various_thread_counts() {
        let n = 997;
        let m = band_matrix(n);
        let x: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let mut want = vec![0.0; n];
        m.mul_vec_into(&x, &mut want);
        for threads in [1, 2, 3, 8, 64] {
            let cfg = ParallelConfig {
                min_nnz: 0,
                threads,
                kernel: KernelChoice::Auto,
                ..Default::default()
            };
            let mut got = vec![0.0; n];
            m.mul_vec_parallel_into(&x, &mut got, &cfg);
            assert_eq!(got, want, "pooled threads={threads}");
            let mut spawned = vec![0.0; n];
            m.mul_vec_spawn_into(&x, &mut spawned, &cfg);
            assert_eq!(spawned, want, "spawn threads={threads}");
        }
    }

    #[test]
    fn pooled_with_explicit_plan_and_pool() {
        let n = 503;
        let m = band_matrix(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut want = vec![0.0; n];
        m.mul_vec_into(&x, &mut want);
        for pool_threads in [1, 2, 5] {
            let pool = WorkerPool::new(pool_threads);
            for chunks in [1, 2, 7, 32] {
                for choice in [
                    KernelChoice::Auto,
                    KernelChoice::Generic,
                    KernelChoice::ShortRow,
                    KernelChoice::DiagSplit,
                    KernelChoice::Sliced,
                ] {
                    let plan = ChunkPlan::with_kernel(&m, chunks, choice);
                    let mut got = vec![0.0; n];
                    // Repeated products on the same warm pool and plan.
                    for _ in 0..3 {
                        m.mul_vec_pooled_into(&x, &mut got, &plan, &pool);
                    }
                    assert_eq!(got, want, "pool={pool_threads} chunks={chunks} {choice:?}");
                }
            }
        }
    }

    /// Pooled blocked products: every column bitwise identical to serial,
    /// across kernels, layout options, pool sizes, chunk counts, and block
    /// widths.
    #[test]
    fn pooled_blocked_product_is_bitwise_serial_per_column() {
        let n = 337;
        let m = band_matrix(n);
        let mut want = vec![0.0; n];
        let x: Vec<f64> = (0..n).map(|i| ((i * 13) % 29) as f64 - 14.0).collect();
        m.mul_vec_into(&x, &mut want);
        let pool = WorkerPool::new(3);
        for k in [1usize, 2, 4, 8] {
            let xk: Vec<f64> = (0..n * k).map(|i| x[i / k]).collect();
            for chunks in [1, 2, 7] {
                for (choice, width, sort) in [
                    (KernelChoice::Auto, IndexWidthChoice::Auto, SellSort::Auto),
                    (
                        KernelChoice::Sliced,
                        IndexWidthChoice::W16,
                        SellSort::Always,
                    ),
                    (KernelChoice::Sliced, IndexWidthChoice::W64, SellSort::Never),
                    (
                        KernelChoice::ShortRow,
                        IndexWidthChoice::W16,
                        SellSort::Auto,
                    ),
                ] {
                    let plan = ChunkPlan::with_options(
                        &m,
                        chunks,
                        choice,
                        BackendChoice::Auto,
                        width,
                        sort,
                    );
                    let mut got = vec![0.0; n * k];
                    m.mul_mat_pooled_into(&xk, &mut got, &plan, &pool, k);
                    for r in 0..n {
                        for j in 0..k {
                            assert_eq!(
                                got[r * k + j].to_bits(),
                                want[r].to_bits(),
                                "k={k} chunks={chunks} {choice:?}/{width:?}/{sort:?} row {r}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rhs_block_choice_parses_and_resolves() {
        assert_eq!(RhsBlockChoice::parse("auto"), Ok(RhsBlockChoice::Auto));
        assert_eq!(RhsBlockChoice::parse("4"), Ok(RhsBlockChoice::Fixed(4)));
        assert!(RhsBlockChoice::parse("3").is_err());
        assert!(RhsBlockChoice::parse("16").is_err());
        // Grouping width: Auto chunks to the table maximum (execution
        // narrows per kernel), singleton groups never block.
        assert_eq!(RhsBlockChoice::Auto.plan_width(1), 1);
        assert_eq!(RhsBlockChoice::Auto.plan_width(2), MAX_RHS_BLOCK);
        assert_eq!(RhsBlockChoice::Fixed(1).plan_width(100), 1);
        assert_eq!(RhsBlockChoice::Fixed(8).plan_width(2), 8);
        // Execution width: per-kernel under Auto, clamped fixed otherwise.
        for kind in [
            KernelKind::Generic,
            KernelKind::ShortRow,
            KernelKind::DiagSplit,
            KernelKind::Sliced,
        ] {
            assert_eq!(RhsBlockChoice::Auto.resolve_for(kind, 1), 1, "{kind:?}");
            assert_eq!(
                RhsBlockChoice::Auto.resolve_for(kind, 2),
                RhsBlockChoice::auto_width(kind),
                "{kind:?}"
            );
            assert_eq!(RhsBlockChoice::Fixed(8).resolve_for(kind, 2), 8);
        }
        assert_eq!(RhsBlockChoice::auto_width(KernelKind::ShortRow), 8);
        assert_eq!(RhsBlockChoice::auto_width(KernelKind::Generic), 4);
        assert_eq!(RhsBlockChoice::auto_width(KernelKind::DiagSplit), 4);
        assert_eq!(RhsBlockChoice::auto_width(KernelKind::Sliced), 4);
        assert_eq!(RhsBlockChoice::Fixed(4).name(), "4");
    }

    /// Rebinding a plan to a same-structure different-values matrix must
    /// (a) keep the resolved kernel/backend/layout decisions, (b) produce
    /// products bitwise identical to a plan built fresh on the new matrix,
    /// and (c) re-guard with the new matrix's content signature.
    #[test]
    fn plan_rebind_matches_fresh_build_for_every_kernel() {
        let n = 256;
        let a = band_matrix(n);
        let mut bld = CooBuilder::new(n, n);
        for (i, j, v) in a.iter() {
            bld.push(i, j, v * 1.75 + 0.125); // same pattern, new values
        }
        let b = bld.build();
        let x: Vec<f64> = (0..n).map(|i| ((i * 7) % 23) as f64 - 11.0).collect();
        let mut want = vec![0.0; n];
        b.mul_vec_into(&x, &mut want);
        let pool = WorkerPool::new(2);
        for choice in [
            KernelChoice::Auto,
            KernelChoice::Generic,
            KernelChoice::ShortRow,
            KernelChoice::DiagSplit,
            KernelChoice::Sliced,
        ] {
            let donor_plan = ChunkPlan::with_options(
                &a,
                3,
                choice,
                BackendChoice::Auto,
                IndexWidthChoice::Auto,
                SellSort::Always,
            );
            let rebound = donor_plan.rebind(&a, &b);
            assert_eq!(rebound.kernel_kind(), donor_plan.kernel_kind());
            assert_eq!(rebound.backend(), donor_plan.backend());
            assert_eq!(rebound.index_width(), donor_plan.index_width());
            assert_eq!(rebound.sorted(), donor_plan.sorted());
            assert_eq!(rebound.ranges(), donor_plan.ranges());
            let mut got = vec![0.0; n];
            b.mul_vec_pooled_into(&x, &mut got, &rebound, &pool);
            for r in 0..n {
                assert_eq!(
                    got[r].to_bits(),
                    want[r].to_bits(),
                    "{choice:?} row {r} after rebind"
                );
            }
            // Blocked path too: the refilled layouts serve SpMM unchanged.
            let k = 4;
            let xk: Vec<f64> = (0..n * k).map(|i| x[i / k]).collect();
            let mut gotk = vec![0.0; n * k];
            b.mul_mat_pooled_into(&xk, &mut gotk, &rebound, &pool, k);
            for r in 0..n {
                for j in 0..k {
                    assert_eq!(gotk[r * k + j].to_bits(), want[r].to_bits());
                }
            }
        }
    }

    /// A rebound value-embedding plan guards against the *donor* matrix —
    /// the signature now describes the rebind target.
    #[test]
    #[should_panic(expected = "different matrix")]
    fn rebound_plan_rejects_the_donor_matrix() {
        let n = 64;
        let a = band_matrix(n);
        let mut bld = CooBuilder::new(n, n);
        for (i, j, v) in a.iter() {
            // Shift by 0.25 (not 1.0): no band entry is -0.25, so every
            // entry stays nonzero and the COO builder keeps the pattern.
            bld.push(i, j, v + 0.25);
        }
        let b = bld.build();
        let plan = ChunkPlan::with_kernel(&a, 2, KernelChoice::DiagSplit);
        let rebound = plan.rebind(&a, &b);
        let mut y = vec![0.0; n];
        a.mul_vec_pooled_into(&vec![1.0; n], &mut y, &rebound, WorkerPool::global());
    }

    /// Rebinding across different structures must be rejected loudly.
    #[test]
    #[should_panic(expected = "identical sparsity structure")]
    fn rebind_across_structures_is_rejected() {
        let a = band_matrix(64);
        let mut bld = CooBuilder::new(64, 64);
        for i in 0..64 {
            bld.push(i, i, 1.0); // diagonal-only: different pattern
        }
        let b = bld.build();
        let plan = ChunkPlan::new(&a, 2);
        let _ = plan.rebind(&a, &b);
    }

    #[test]
    #[should_panic(expected = "chunk plan does not cover")]
    fn plan_from_wrong_matrix_is_rejected() {
        let a = band_matrix(10);
        let b = band_matrix(20);
        let plan = ChunkPlan::new(&a, 2);
        let mut y = vec![0.0; 20];
        b.mul_vec_pooled_into(&[1.0; 20], &mut y, &plan, WorkerPool::global());
    }

    /// Layout-backed kernels embed the build matrix's values, so even a
    /// matrix with *identical sparsity* but different values must be
    /// rejected — accepting it would silently return the wrong product.
    #[test]
    #[should_panic(expected = "different matrix")]
    fn plan_from_same_shape_different_values_is_rejected() {
        let n = 64;
        let a = band_matrix(n);
        let mut bld = CooBuilder::new(n, n);
        for (i, j, v) in a.iter() {
            bld.push(i, j, v + 0.25); // same pattern, different (nonzero) values
        }
        let b = bld.build();
        let plan = ChunkPlan::with_kernel(&a, 2, KernelChoice::DiagSplit);
        let mut y = vec![0.0; n];
        b.mul_vec_pooled_into(&vec![1.0; n], &mut y, &plan, WorkerPool::global());
    }

    /// A clone (bitwise-identical content, different allocation) is a valid
    /// plan target — the content signature, not the allocation, decides.
    #[test]
    fn plan_accepts_an_identical_clone() {
        let n = 64;
        let a = band_matrix(n);
        let b = a.clone();
        let plan = ChunkPlan::with_kernel(&a, 2, KernelChoice::Sliced);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut want = vec![0.0; n];
        a.mul_vec_into(&x, &mut want);
        let mut got = vec![0.0; n];
        b.mul_vec_pooled_into(&x, &mut got, &plan, WorkerPool::global());
        assert_eq!(want, got);
    }

    #[test]
    fn small_matrix_uses_serial_path() {
        let m = band_matrix(4);
        let cfg = ParallelConfig::default(); // min_nnz = 50k > nnz
        let mut y = vec![0.0; 4];
        m.mul_vec_parallel_into(&[1.0; 4], &mut y, &cfg);
        let mut want = vec![0.0; 4];
        m.mul_vec_into(&[1.0; 4], &mut want);
        assert_eq!(y, want);
    }

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn more_threads_than_rows() {
        let m = band_matrix(3);
        let cfg = ParallelConfig {
            min_nnz: 0,
            threads: 16,
            kernel: KernelChoice::Auto,
            ..Default::default()
        };
        let mut y = vec![0.0; 3];
        m.mul_vec_parallel_into(&[1.0, 2.0, 3.0], &mut y, &cfg);
        let mut want = vec![0.0; 3];
        m.mul_vec_into(&[1.0, 2.0, 3.0], &mut want);
        assert_eq!(y, want);
    }

    #[test]
    fn spawn_and_pool_share_the_chunk_bounds() {
        let m = band_matrix(200);
        for chunks in [1, 3, 8] {
            let plan = ChunkPlan::new(&m, chunks);
            let direct = m.balanced_row_chunks(chunks);
            assert_eq!(plan.ranges(), &direct[..], "chunks={chunks}");
        }
    }
}
