//! Reusable vector arenas for the solvers' scratch state.
//!
//! Every solver's inner loop propagates distributions through a pair (or a
//! handful) of `n_states`-sized `f64` vectors. Allocating them per `solve`
//! call is invisible for one solve and expensive for a sweep: `solve_many`
//! over a horizon grid, or an engine sweep over hundreds of requests, would
//! churn the allocator with megabyte-sized buffers that are immediately
//! recycled. A [`Workspace`] keeps returned buffers and hands them back out,
//! so a warmed-up solver performs **zero steady-state heap allocations** for
//! its vector scratch: after the first solve on a given model size, every
//! `take` is served from the free list.
//!
//! The arena is deliberately simple — a free list of `Vec<f64>` reused by
//! best-fit capacity — because the workloads cycle through a tiny set of
//! sizes (`n`, `n + 1`). It is `&mut`-threaded, not shared: each engine
//! sweep job owns one.

/// Counters describing how a [`Workspace`] was used. `fresh_allocs` staying
/// flat across repeated solves is the zero-steady-state-allocation property
/// the execution layer promises (asserted by the workspace-reuse tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Buffers handed out.
    pub takes: u64,
    /// Takes that had to allocate a fresh buffer.
    pub fresh_allocs: u64,
    /// Takes served from the free list.
    pub reused: u64,
    /// Buffers currently parked in the free list.
    pub pooled: usize,
    /// Capacity (in `f64`s) parked in the free list.
    pub pooled_capacity: usize,
}

impl WorkspaceStats {
    /// Sums the *counters* (`takes`, `fresh_allocs`, `reused`) for
    /// aggregating per-worker workspaces into one report. The free-list
    /// gauges (`pooled`, `pooled_capacity`) describe one live arena at one
    /// instant — summing end-of-life snapshots would report freed buffers
    /// as parked — so they are left at the accumulator's own values.
    pub fn merge(&mut self, other: &WorkspaceStats) {
        self.takes += other.takes;
        self.fresh_allocs += other.fresh_allocs;
        self.reused += other.reused;
    }
}

/// A reusable arena of `f64` vectors. See the module docs.
#[derive(Debug, Default)]
pub struct Workspace {
    free: Vec<Vec<f64>>,
    takes: u64,
    fresh_allocs: u64,
    reused: u64,
}

impl Workspace {
    /// An empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pops the best-fitting free buffer (smallest capacity ≥ `n`, else the
    /// largest available to grow in place), or allocates fresh.
    fn pop(&mut self, n: usize) -> Vec<f64> {
        self.takes += 1;
        let best = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, v)| v.capacity() >= n)
            .min_by_key(|(_, v)| v.capacity())
            .map(|(i, _)| i)
            .or_else(|| {
                self.free
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, v)| v.capacity())
                    .map(|(i, _)| i)
            });
        match best {
            Some(i) => {
                let buf = self.free.swap_remove(i);
                if buf.capacity() >= n {
                    self.reused += 1;
                } else {
                    // Growing an undersized buffer reallocates.
                    self.fresh_allocs += 1;
                }
                buf
            }
            None => {
                self.fresh_allocs += 1;
                Vec::new()
            }
        }
    }

    /// A buffer of length `n`, zero-filled.
    pub fn take_zeroed(&mut self, n: usize) -> Vec<f64> {
        let mut buf = self.pop(n);
        buf.clear();
        buf.resize(n, 0.0);
        buf
    }

    /// A zero-filled buffer for `rows` rows of `k` interleaved columns —
    /// the blocked-stepping (multi-RHS) variant of
    /// [`Workspace::take_zeroed`]. Same free list, so blocked and serial
    /// solves share buffers when `rows * k` sizes coincide.
    pub fn take_zeroed_block(&mut self, rows: usize, k: usize) -> Vec<f64> {
        self.take_zeroed(rows * k)
    }

    /// A buffer holding a copy of `src`.
    pub fn take_copied(&mut self, src: &[f64]) -> Vec<f64> {
        let mut buf = self.pop(src.len());
        buf.clear();
        buf.extend_from_slice(src);
        buf
    }

    /// Returns a buffer to the free list for reuse.
    pub fn give(&mut self, buf: Vec<f64>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Drops every parked buffer. Call after catching a panic from a solver
    /// that was using this workspace: `take_*` always overwrites the data it
    /// hands out, but discarding the arena outright guarantees nothing an
    /// unwound solver touched — contents *or* capacity bookkeeping — can
    /// reach the next occupant. Counters are preserved.
    pub fn discard_all(&mut self) {
        self.free.clear();
    }

    /// Usage counters and free-list gauges.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            takes: self.takes,
            fresh_allocs: self.fresh_allocs,
            reused: self.reused,
            pooled: self.free.len(),
            pooled_capacity: self.free.iter().map(Vec::capacity).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_reuses_the_buffer() {
        let mut ws = Workspace::new();
        let a = ws.take_zeroed(100);
        assert_eq!(a.len(), 100);
        let ptr = a.as_ptr();
        ws.give(a);
        let b = ws.take_zeroed(64);
        assert_eq!(b.as_ptr(), ptr, "smaller request must reuse the buffer");
        assert_eq!(b.len(), 64);
        assert!(b.iter().all(|&x| x == 0.0));
        let stats = ws.stats();
        assert_eq!(stats.takes, 2);
        assert_eq!(stats.fresh_allocs, 1);
        assert_eq!(stats.reused, 1);
    }

    #[test]
    fn take_copied_copies() {
        let mut ws = Workspace::new();
        let src = [1.0, 2.5, -3.0];
        let buf = ws.take_copied(&src);
        assert_eq!(buf, src);
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let mut ws = Workspace::new();
        // Warm up with the two sizes a solver cycles through.
        for _ in 0..2 {
            let a = ws.take_zeroed(500);
            let b = ws.take_zeroed(501);
            ws.give(a);
            ws.give(b);
        }
        let warm = ws.stats().fresh_allocs;
        for _ in 0..100 {
            let a = ws.take_copied(&vec![1.0; 500]);
            let b = ws.take_zeroed(501);
            ws.give(a);
            ws.give(b);
        }
        assert_eq!(
            ws.stats().fresh_allocs,
            warm,
            "steady state must not allocate"
        );
        assert_eq!(ws.stats().reused, 2 + 200);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut ws = Workspace::new();
        let small = ws.take_zeroed(10);
        let big = ws.take_zeroed(1000);
        let (small_ptr, big_ptr) = (small.as_ptr(), big.as_ptr());
        ws.give(big);
        ws.give(small);
        let got = ws.take_zeroed(8);
        assert_eq!(got.as_ptr(), small_ptr, "best fit must pick the small one");
        let got_big = ws.take_zeroed(900);
        assert_eq!(got_big.as_ptr(), big_ptr);
    }

    #[test]
    fn merge_sums_counters_but_not_gauges() {
        let mut a = WorkspaceStats {
            takes: 1,
            fresh_allocs: 1,
            reused: 0,
            pooled: 2,
            pooled_capacity: 10,
        };
        let b = WorkspaceStats {
            takes: 3,
            fresh_allocs: 0,
            reused: 3,
            pooled: 1,
            pooled_capacity: 5,
        };
        a.merge(&b);
        assert_eq!(a.takes, 4);
        assert_eq!(a.reused, 3);
        // Gauges are per-arena snapshots, not counters: no summing.
        assert_eq!(a.pooled, 2);
        assert_eq!(a.pooled_capacity, 10);
    }
}
