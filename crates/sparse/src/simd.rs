//! SIMD backend selection for the SpMV kernels.
//!
//! The structure-adaptive kernels (see [`crate::kernel`]) come in up to
//! three *backends*: the mandatory scalar loops, and — behind the `simd`
//! cargo feature on `x86_64` — explicit-intrinsics variants of the sliced
//! and short-row kernels (SSE2 and AVX2). The backend changes **how** a
//! row's products are computed (vector gathers, lane-parallel multiplies),
//! never **what** is accumulated or in which order: every SIMD variant
//! reduces each row's products in CSR index order with the same rounding
//! steps as the scalar loop (vector lanes are either whole independent rows
//! — the sliced layout — or per-row product batches added back one by one,
//! in order), so results stay bitwise identical to the serial product and
//! the `--stable` determinism contract holds across backends and machines.
//!
//! ## Dispatch
//!
//! [`detected`] probes the CPU **once per process** (memoized in an atomic;
//! the probe itself is cheap but the memo makes the policy auditable) and
//! returns the widest backend the hardware supports. [`resolve`] clamps a
//! requested [`BackendChoice`] to that: forcing `avx2` on a machine without
//! AVX2 degrades to the widest available backend, never to undefined
//! behavior. On non-`x86_64` targets — or without the `simd` feature — the
//! probe reports [`Backend::Scalar`] and every choice resolves to scalar,
//! so the feature gate compiles (and runs) cleanly everywhere.

use std::sync::atomic::{AtomicU8, Ordering};

/// A user-facing backend selection: automatic, or one forced backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendChoice {
    /// Use the widest backend the CPU supports (the default).
    #[default]
    Auto,
    /// Force the scalar loops.
    Scalar,
    /// Cap at the SSE2 variants (scalar where the CPU lacks even SSE2 —
    /// impossible on `x86_64`, where SSE2 is baseline).
    Sse2,
    /// Cap at the AVX2 variants.
    Avx2,
}

impl BackendChoice {
    /// Parses the CLI/spec spelling (`auto`, `scalar`, `sse2`, `avx2`).
    pub fn parse(s: &str) -> Result<BackendChoice, String> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(BackendChoice::Auto),
            "scalar" => Ok(BackendChoice::Scalar),
            "sse2" => Ok(BackendChoice::Sse2),
            "avx2" => Ok(BackendChoice::Avx2),
            other => Err(format!(
                "unknown backend {other:?} (expected auto/scalar/sse2/avx2)"
            )),
        }
    }
}

/// A resolved kernel backend. Ordered: `Scalar < Sse2 < Avx2` (wider is
/// greater), which is what lets [`resolve`] clamp a request to the
/// hardware with `min`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Backend {
    /// The scalar reference loops (always available).
    Scalar,
    /// 128-bit SSE2 variants (x86_64 baseline).
    Sse2,
    /// 256-bit AVX2 variants (runtime-detected).
    Avx2,
}

impl Backend {
    /// Stable name used in reports, CSVs and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Memo for [`detected`]: `0` = not probed yet, otherwise `backend + 1`.
static DETECTED: AtomicU8 = AtomicU8::new(0);

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn probe() -> Backend {
    if std::arch::is_x86_feature_detected!("avx2") {
        Backend::Avx2
    } else {
        // SSE2 is part of the x86_64 baseline — no probe needed.
        Backend::Sse2
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
fn probe() -> Backend {
    Backend::Scalar
}

/// The widest backend this process can run, probed once and memoized.
/// Scalar when the `simd` feature is off or the target is not `x86_64`.
pub fn detected() -> Backend {
    match DETECTED.load(Ordering::Relaxed) {
        1 => Backend::Scalar,
        2 => Backend::Sse2,
        3 => Backend::Avx2,
        _ => {
            let probed = probe();
            // Racing first callers probe redundantly but agree (CPUID is
            // stable for the process lifetime), so plain stores suffice.
            DETECTED.store(probed as u8 + 1, Ordering::Relaxed);
            probed
        }
    }
}

/// Resolves a requested backend against the hardware: `Auto` takes
/// [`detected`]; a forced backend is clamped to it (`min`), so a request
/// can only narrow what runs, never select an unsupported instruction set.
pub fn resolve(choice: BackendChoice) -> Backend {
    let ceiling = detected();
    match choice {
        BackendChoice::Auto => ceiling,
        BackendChoice::Scalar => Backend::Scalar,
        BackendChoice::Sse2 => Backend::Sse2.min(ceiling),
        BackendChoice::Avx2 => Backend::Avx2.min(ceiling),
    }
}

/// Every backend [`resolve`] can return in this process, narrowest first —
/// what ablation harnesses iterate. Always starts with `Scalar`.
pub fn available() -> Vec<Backend> {
    let mut all = vec![Backend::Scalar];
    if detected() >= Backend::Sse2 {
        all.push(Backend::Sse2);
    }
    if detected() >= Backend::Avx2 {
        all.push(Backend::Avx2);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_memoized_and_consistent() {
        let first = detected();
        for _ in 0..3 {
            assert_eq!(detected(), first, "per-process probe must be stable");
        }
        assert_ne!(DETECTED.load(Ordering::Relaxed), 0, "probe must memoize");
        // The memo round-trips the probed value.
        assert_eq!(DETECTED.load(Ordering::Relaxed), first as u8 + 1);
    }

    /// The feature gate must be inert off `x86_64` (and without the
    /// feature): everything resolves to scalar, so cross-compilation can
    /// never pick up an instruction set the target lacks.
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    #[test]
    fn non_simd_builds_resolve_everything_to_scalar() {
        assert_eq!(detected(), Backend::Scalar);
        for choice in [
            BackendChoice::Auto,
            BackendChoice::Scalar,
            BackendChoice::Sse2,
            BackendChoice::Avx2,
        ] {
            assert_eq!(resolve(choice), Backend::Scalar);
        }
        assert_eq!(available(), vec![Backend::Scalar]);
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn simd_builds_detect_at_least_sse2() {
        assert!(detected() >= Backend::Sse2, "SSE2 is the x86_64 baseline");
        assert_eq!(resolve(BackendChoice::Scalar), Backend::Scalar);
        assert_eq!(resolve(BackendChoice::Sse2), Backend::Sse2);
        // Forced AVX2 resolves to AVX2 exactly when the CPU has it.
        let resolved = resolve(BackendChoice::Avx2);
        assert_eq!(resolved, detected().min(Backend::Avx2));
        assert!(available().len() >= 2);
    }

    #[test]
    fn resolve_is_monotone_in_the_request() {
        // A wider request can never resolve to a narrower backend than a
        // narrower request does.
        let order = [
            BackendChoice::Scalar,
            BackendChoice::Sse2,
            BackendChoice::Avx2,
        ];
        for pair in order.windows(2) {
            assert!(resolve(pair[0]) <= resolve(pair[1]));
        }
        assert_eq!(resolve(BackendChoice::Auto), detected());
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(BackendChoice::parse("AVX2").unwrap(), BackendChoice::Avx2);
        assert_eq!(BackendChoice::parse("auto").unwrap(), BackendChoice::Auto);
        assert_eq!(
            BackendChoice::parse("scalar").unwrap(),
            BackendChoice::Scalar
        );
        assert_eq!(BackendChoice::parse("sse2").unwrap(), BackendChoice::Sse2);
        assert!(BackendChoice::parse("avx512").is_err());
    }
}
