//! Compressed sparse row matrices.

#[cfg(test)]
use crate::builder::CooBuilder;

/// An immutable CSR (compressed sparse row) matrix of `f64` entries.
///
/// Column indices are `u32` — state spaces in this workspace stay far below
/// `2³²` — which halves index memory traffic during products (a measurable win
/// for the SpMV-bound randomization solvers; see the workspace performance
/// notes).
#[derive(Clone, Debug)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes row `i`'s entries.
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    /// Lazily memoized content signature (see [`CsrMatrix::content_sig`]).
    /// Valid because the matrix is immutable after construction; cloning
    /// carries an initialized signature over (the clone's content is
    /// identical by definition).
    sig: std::sync::OnceLock<u64>,
}

/// Equality is by content; the memoized signature is derived state.
impl PartialEq for CsrMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
            && self.values == other.values
    }
}

impl CsrMatrix {
    /// Builds from raw CSR arrays. Intended for [`CooBuilder`](crate::builder::CooBuilder); validates the
    /// structural invariants in debug builds.
    pub(crate) fn from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), nrows + 1);
        debug_assert_eq!(col_idx.len(), values.len());
        debug_assert_eq!(*row_ptr.last().unwrap(), values.len());
        debug_assert!(col_idx.iter().all(|&c| (c as usize) < ncols.max(1)));
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
            sig: std::sync::OnceLock::new(),
        }
    }

    /// The `n×n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n as u32).collect(),
            values: vec![1.0; n],
            sig: std::sync::OnceLock::new(),
        }
    }

    /// A 64-bit FNV-1a signature of the full matrix content (shape, row
    /// pointers, columns, value bits), memoized on first use — so repeated
    /// calls are `O(1)`. `ChunkPlan` records it at construction and
    /// re-checks it on every pooled product: a plan's layout kernels embed
    /// a copy of the build matrix's values, so using a plan with a
    /// different matrix of identical sparsity must be caught, not silently
    /// answered with the wrong product.
    pub fn content_sig(&self) -> u64 {
        *self.sig.get_or_init(|| {
            const OFFSET: u64 = 0xcbf29ce484222325;
            const PRIME: u64 = 0x100000001b3;
            let mut h = OFFSET;
            // Word-granular FNV-1a: one xor+multiply per u64. The signature
            // is an in-process guard, never persisted, and a value re-bind
            // recomputes it over the whole nnz array — byte-granular hashing
            // made that the single most expensive step of a delta rebind.
            let mut eat = |x: u64| {
                h = (h ^ x).wrapping_mul(PRIME);
            };
            eat(self.nrows as u64);
            eat(self.ncols as u64);
            for &p in &self.row_ptr {
                eat(p as u64);
            }
            for &c in &self.col_idx {
                eat(u64::from(c));
            }
            for &v in &self.values {
                eat(v.to_bits());
            }
            h
        })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over the entries of row `i` as `(col, value)` pairs.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[span.clone()]
            .iter()
            .zip(&self.values[span])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Iterator over all entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |i| self.row(i).map(move |(j, v)| (i, j, v)))
    }

    /// Entry lookup by binary search within the row (rows are column-sorted).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let span = &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]];
        match span.binary_search(&(j as u32)) {
            Ok(k) => self.values[self.row_ptr[i] + k],
            Err(_) => 0.0,
        }
    }

    /// `y = A·x` (gather form). `y` is fully overwritten.
    ///
    /// # Panics
    /// If `x.len() != ncols` or `y.len() != nrows`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length mismatch");
        assert_eq!(y.len(), self.nrows, "y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                // Safety note: indices validated at construction.
                acc += self.values[k] * x[self.col_idx[k] as usize];
            }
            *yi = acc;
        }
    }

    /// Convenience allocating version of [`CsrMatrix::mul_vec_into`].
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Blocked product `Y = A·X` over `k` right-hand sides stored
    /// **interleaved**: column `j` of `X` lives at `x[col*k + j]`, and column
    /// `j` of `Y` at `y[row*k + j]`. One streaming pass of the matrix
    /// advances all `k` vectors — the point of blocked stepping — and each
    /// output column is accumulated with its own accumulator in the row's
    /// CSR entry order, so column `j` of the result is **bitwise identical**
    /// to a [`CsrMatrix::mul_vec_into`] call on column `j` alone. This is
    /// the serial ground truth the blocked kernels must match.
    ///
    /// # Panics
    /// If `k == 0`, `x.len() != ncols·k` or `y.len() != nrows·k`.
    pub fn mul_mat_into(&self, x: &[f64], y: &mut [f64], k: usize) {
        assert!(k > 0, "rhs block must be positive");
        assert!(k <= crate::kernel::MAX_RHS_BLOCK, "rhs block too large");
        assert_eq!(x.len(), self.ncols * k, "x length mismatch");
        assert_eq!(y.len(), self.nrows * k, "y length mismatch");
        // Monomorphized per width so the accumulator is a const-size array —
        // the runtime-length slice version spends most of its time in
        // per-row memset/memcpy calls on short-row matrices.
        match k {
            1 => self.mul_mat_into_k::<1>(x, y),
            2 => self.mul_mat_into_k::<2>(x, y),
            3 => self.mul_mat_into_k::<3>(x, y),
            4 => self.mul_mat_into_k::<4>(x, y),
            5 => self.mul_mat_into_k::<5>(x, y),
            6 => self.mul_mat_into_k::<6>(x, y),
            7 => self.mul_mat_into_k::<7>(x, y),
            8 => self.mul_mat_into_k::<8>(x, y),
            _ => unreachable!("rhs block validated against MAX_RHS_BLOCK"),
        }
    }

    /// Const-width body of [`CsrMatrix::mul_mat_into`].
    fn mul_mat_into_k<const K: usize>(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..self.nrows {
            let mut acc = [0.0f64; K];
            for e in self.row_ptr[i]..self.row_ptr[i + 1] {
                let v = self.values[e];
                let c = self.col_idx[e] as usize * K;
                for (j, a) in acc.iter_mut().enumerate() {
                    *a += v * x[c + j];
                }
            }
            y[i * K..(i + 1) * K].copy_from_slice(&acc);
        }
    }

    /// `yᵀ = xᵀ·A` (scatter form, serial).
    ///
    /// Solvers prefer the gather form on the transposed matrix; this exists for
    /// validation and one-shot uses.
    pub fn vec_mul_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows, "x length mismatch");
        assert_eq!(y.len(), self.ncols, "y length mismatch");
        y.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue; // distributions are often sparse at early steps
            }
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                y[self.col_idx[k] as usize] += xi * self.values[k];
            }
        }
    }

    /// Transposed copy (CSR of `Aᵀ`), via a counting sort over columns.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for i in 0..self.nrows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k] as usize;
                let dst = cursor[j];
                cursor[j] += 1;
                col_idx[dst] = i as u32;
                values[dst] = self.values[k];
            }
        }
        CsrMatrix::from_parts(self.ncols, self.nrows, row_ptr, col_idx, values)
    }

    /// Row sums (for generators these should be ~0; for stochastic matrices ~1).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.nrows)
            .map(|i| self.row(i).map(|(_, v)| v).sum())
            .collect()
    }

    /// Largest absolute diagonal entry — the minimal valid uniformization rate
    /// for a generator.
    pub fn max_abs_diag(&self) -> f64 {
        (0..self.nrows.min(self.ncols))
            .map(|i| self.get(i, i).abs())
            .fold(0.0, f64::max)
    }

    /// Checks row-stochasticity to tolerance `tol` (each row sums to 1, all
    /// entries non-negative).
    pub fn is_row_stochastic(&self, tol: f64) -> bool {
        self.values.iter().all(|&v| v >= -tol)
            && self.row_sums().iter().all(|s| (s - 1.0).abs() <= tol)
    }

    /// Returns `I + α·A` for square `A` (used to uniformize generators:
    /// `P = I + Q/Λ`). The diagonal is materialized even where `A` has none.
    ///
    /// Built directly in CSR form rather than via [`CooBuilder`](crate::builder::CooBuilder) (which
    /// drops exact zeros): the result's pattern must be a pure function of
    /// `A`'s pattern, never of value cancellation. `1 + α·a_ii` rounds to
    /// exactly `0.0` for the row attaining the uniformization rate, and
    /// dropping that entry would give structurally identical chains
    /// different `P` patterns, breaking plan re-binding across rate
    /// variants.
    pub fn identity_plus_scaled(&self, alpha: f64) -> CsrMatrix {
        assert_eq!(self.nrows, self.ncols, "matrix must be square");
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx: Vec<u32> = Vec::with_capacity(self.values.len() + self.nrows);
        let mut values: Vec<f64> = Vec::with_capacity(self.values.len() + self.nrows);
        row_ptr.push(0usize);
        for i in 0..self.nrows {
            let mut has_diag = false;
            for (j, v) in self.row(i) {
                if !has_diag && j > i {
                    // Column-sorted insert of a missing diagonal.
                    col_idx.push(i as u32);
                    values.push(1.0);
                    has_diag = true;
                }
                let mut val = alpha * v;
                if j == i {
                    val += 1.0;
                    has_diag = true;
                }
                col_idx.push(j as u32);
                values.push(val);
            }
            if !has_diag {
                col_idx.push(i as u32);
                values.push(1.0);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix::from_parts(self.nrows, self.ncols, row_ptr, col_idx, values)
    }

    /// A matrix with this one's exact sparsity pattern and `values` in
    /// pattern order — the value re-bind primitive: a rate variant of a
    /// cached matrix clones the pattern arrays (a memcpy) instead of
    /// re-running construction, and the content signature starts fresh
    /// (the values differ by definition).
    ///
    /// # Panics
    /// If `values.len()` differs from this matrix's nnz.
    pub fn with_values(&self, values: Vec<f64>) -> CsrMatrix {
        assert_eq!(
            values.len(),
            self.nnz(),
            "value re-bind requires one value per stored entry"
        );
        CsrMatrix::from_parts(
            self.nrows,
            self.ncols,
            self.row_ptr.clone(),
            self.col_idx.clone(),
            values,
        )
    }

    /// Dense copy (tests / tiny oracles only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for (i, j, v) in self.iter() {
            d[i][j] = v;
        }
        d
    }

    /// Heap bytes held by the CSR arrays, counted by **capacity** (what the
    /// allocator actually handed out), not length. Used by bounded artifact
    /// caches for byte accounting; audited against a counting allocator by
    /// the engine's byte-accounting test.
    pub fn heap_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<f64>()
            + self.col_idx.capacity() * std::mem::size_of::<u32>()
            + self.row_ptr.capacity() * std::mem::size_of::<usize>()
    }

    /// Raw access to the row pointer array (read-only).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw access to the column index array (read-only).
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Raw access to the value array (read-only).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Splits the row range into `chunks` contiguous pieces with roughly equal
    /// *work* (nnz), not equal row counts — rows of randomized RAID models vary
    /// widely in fill.
    pub fn balanced_row_chunks(&self, chunks: usize) -> Vec<std::ops::Range<usize>> {
        let chunks = chunks.max(1);
        let total = self.nnz();
        let per = total.div_ceil(chunks).max(1);
        let mut out = Vec::with_capacity(chunks);
        let mut start = 0usize;
        let mut acc = 0usize;
        for i in 0..self.nrows {
            acc += self.row_ptr[i + 1] - self.row_ptr[i];
            if acc >= per {
                out.push(start..i + 1);
                start = i + 1;
                acc = 0;
            }
        }
        if start < self.nrows {
            out.push(start..self.nrows);
        }
        if out.is_empty() {
            out.push(0..self.nrows);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        let mut b = CooBuilder::new(2, 3);
        b.push(0, 0, 1.0);
        b.push(0, 2, 2.0);
        b.push(1, 1, 3.0);
        b.build()
    }

    #[test]
    fn get_and_row_iteration() {
        let m = small();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(1, 1), 3.0);
        let row0: Vec<_> = m.row(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn mul_and_vecmul_agree_with_hand_computation() {
        let m = small();
        let y = m.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0]);
        let mut yt = vec![0.0; 3];
        m.vec_mul_into(&[1.0, 2.0], &mut yt);
        assert_eq!(yt, vec![1.0, 6.0, 2.0]);
    }

    #[test]
    fn blocked_product_matches_columns_bitwise() {
        let m = small();
        for k in 1..=8usize {
            let x: Vec<f64> = (0..3 * k).map(|i| (i as f64 * 0.7).sin() + 0.1).collect();
            let mut y = vec![9.0; 2 * k];
            m.mul_mat_into(&x, &mut y, k);
            for j in 0..k {
                let xj: Vec<f64> = (0..3).map(|c| x[c * k + j]).collect();
                let mut yj = vec![0.0; 2];
                m.mul_vec_into(&xj, &mut yj);
                for r in 0..2 {
                    assert_eq!(y[r * k + j].to_bits(), yj[r].to_bits(), "k={k} col={j}");
                }
            }
        }
    }

    #[test]
    fn transpose_has_swapped_entries() {
        let m = small().transpose();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.get(2, 0), 2.0);
        assert_eq!(m.get(1, 1), 3.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn identity_and_uniformization() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, -1.0);
        b.push(0, 1, 1.0);
        b.push(1, 0, 2.0);
        b.push(1, 1, -2.0);
        let q = b.build();
        let p = q.identity_plus_scaled(1.0 / 2.0);
        assert!(p.is_row_stochastic(1e-14));
        assert_eq!(p.get(0, 0), 0.5);
        assert_eq!(p.get(1, 0), 1.0);
        assert_eq!(p.get(1, 1), 0.0);
        assert_eq!(q.max_abs_diag(), 2.0);
    }

    #[test]
    fn identity_plus_scaled_materializes_missing_diagonal() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 1, 1.0); // no (0,0) and no row-1 entries at all
        let a = b.build();
        let p = a.identity_plus_scaled(0.5);
        assert_eq!(p.get(0, 0), 1.0);
        assert_eq!(p.get(0, 1), 0.5);
        assert_eq!(p.get(1, 1), 1.0);
    }

    #[test]
    fn balanced_chunks_cover_all_rows() {
        let m = small();
        for chunks in 1..5 {
            let parts = m.balanced_row_chunks(chunks);
            let mut covered = 0;
            let mut expected_start = 0;
            for r in &parts {
                assert_eq!(r.start, expected_start);
                expected_start = r.end;
                covered += r.len();
            }
            assert_eq!(covered, m.nrows());
        }
    }

    #[test]
    fn row_sums_and_stochastic_check() {
        let m = small();
        assert_eq!(m.row_sums(), vec![3.0, 3.0]);
        assert!(!m.is_row_stochastic(1e-12));
        assert!(CsrMatrix::identity(4).is_row_stochastic(0.0));
    }
}
