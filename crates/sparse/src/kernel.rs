//! Structure-adaptive SpMV kernels.
//!
//! The randomization solvers spend nearly all their time in `y = A·x` over
//! one fixed matrix, and the models the paper evaluates produce highly
//! structured generators: short rows (a handful of transitions per state), a
//! fully materialized diagonal (`P = I + Q/Λ` stores every diagonal entry),
//! near-banded couplings. A single generic CSR loop leaves measurable factors
//! on the table there, so the execution layer analyzes each matrix **once**
//! (at [`ChunkPlan`](crate::ChunkPlan) construction) and picks a kernel:
//!
//! * **generic** — the textbook bounds-checked CSR gather; the ground truth
//!   every other kernel must match bitwise, and the fallback for matrices
//!   with no exploitable structure (or too small to amortize a layout).
//! * **shortrow** — the same loop with one-time-validated unchecked indexing;
//!   wins on short-row matrices where per-element bounds checks and loop
//!   overhead rival the arithmetic.
//! * **diagsplit** — stores the diagonal densely and the off-diagonal
//!   entries in a split CSR; each row accumulates *lower entries, diagonal,
//!   upper entries* — exactly the column-sorted CSR order, so results stay
//!   bitwise identical while the diagonal's gather becomes a sequential
//!   `x[i]` access.
//! * **sliced** — a SELL-like sliced layout: groups of [`LANES`] consecutive
//!   rows store their entries lane-interleaved and padded to the slice
//!   width, so the inner loop advances all lanes in lock-step with
//!   independent accumulators (breaking the single-accumulator latency
//!   chain). Rows far longer than average are excluded from slices (they
//!   would explode the padding) and handled row-wise.
//!
//! ## Backends
//!
//! The shortrow and sliced kernels additionally come in explicit-SIMD
//! *backends* (x86_64 SSE2/AVX2 intrinsics behind the `simd` cargo feature
//! and runtime CPUID dispatch — see [`crate::simd`]): the sliced layout's
//! lanes are whole independent rows, so its vector variant is the SELL
//! strategy executed for real (vector gathers for `x`, lane-parallel
//! multiply/add, blend-predicated ragged spans); the shortrow variant
//! vectorizes each row's gathers and multiplies and folds the products
//! back **in index order** (a horizontal reduction, not a tree sum), so
//! every backend preserves the bitwise contract below. The scalar loops
//! remain the mandatory fallback, and under an `Auto` backend request the
//! shortrow kernel deliberately stays scalar — its in-order reduction is
//! add-latency bound, and the measured grids (`repro kernels`) show the
//! vector variant losing there.
//!
//! ## Bitwise identity
//!
//! Every kernel accumulates each output row's products **in the row's CSR
//! order with a single accumulator** — only *which rows* a loop iteration
//! advances differs. Padded slice positions are never accumulated: a padded
//! cell's `0.0 × x[pad_col]` is only a no-op for finite `x`, and becomes
//! `NaN` the moment the input vector carries `±inf`/`NaN` (which transient
//! iterates can, transiently, on degenerate models) — so per-lane lengths
//! gate the tail iterations instead of relying on zero padding. The
//! proptests pin every kernel to the serial [`CsrMatrix::mul_vec_into`]
//! result bit for bit.
//!
//! ## Safety
//!
//! The non-generic kernels use unchecked indexing. Soundness rests on the
//! CSR construction invariant `col < ncols` (enforced by
//! [`CooBuilder`](crate::CooBuilder) and preserved by every transform);
//! `Kernel::build` re-validates it with one `O(nnz)` scan before an
//! unchecked kernel is ever selected, and `mul_rows` asserts the matrix it
//! is handed matches the one the kernel was built from (`nrows`/`nnz`).

use crate::csr::CsrMatrix;
use crate::simd::{self, Backend, BackendChoice};

/// Lanes per slice of the sliced layout (rows advanced in lock-step).
pub const LANES: usize = 8;

/// Sorting-window size for SELL-σ row sorting: rows are reordered by length
/// only **within** σ-row windows, so a window's rows stay inside a
/// σ-aligned row band and chunked execution can scatter results without
/// ever writing outside its chunk. Must be a multiple of [`LANES`].
pub const SIGMA: usize = 64;

/// Slices per σ-window.
const WINDOW_SLICES: usize = SIGMA / LANES;

/// Largest supported right-hand-side block for the blocked (multi-vector)
/// SpMM entry points. Bounds the per-row accumulator arrays.
pub const MAX_RHS_BLOCK: usize = 8;

/// Row length above which a row counts as "short" for selection purposes.
const SHORT_ROW_LEN: usize = 16;

/// Below this nnz no layout is built: setup would dwarf the products a
/// matrix this small ever receives, and the generic loop is already fast.
const MIN_KERNEL_NNZ: usize = 4_096;

/// A user-facing kernel selection: automatic, or one forced kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelChoice {
    /// Analyze the matrix and pick (the default).
    #[default]
    Auto,
    /// Force the generic bounds-checked CSR loop.
    Generic,
    /// Force the unrolled short-row kernel.
    ShortRow,
    /// Force the diagonal-split kernel.
    DiagSplit,
    /// Force the sliced (SELL-like) layout.
    Sliced,
}

impl KernelChoice {
    /// The forced kind, or `None` for `Auto`.
    pub fn forced(self) -> Option<KernelKind> {
        match self {
            KernelChoice::Auto => None,
            KernelChoice::Generic => Some(KernelKind::Generic),
            KernelChoice::ShortRow => Some(KernelKind::ShortRow),
            KernelChoice::DiagSplit => Some(KernelKind::DiagSplit),
            KernelChoice::Sliced => Some(KernelKind::Sliced),
        }
    }

    /// Parses the CLI/spec spelling (`auto`, `generic`, `shortrow`,
    /// `diagsplit`, `sliced`).
    pub fn parse(s: &str) -> Result<KernelChoice, String> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(KernelChoice::Auto),
            "generic" => Ok(KernelChoice::Generic),
            "shortrow" => Ok(KernelChoice::ShortRow),
            "diagsplit" => Ok(KernelChoice::DiagSplit),
            "sliced" => Ok(KernelChoice::Sliced),
            other => Err(format!(
                "unknown kernel {other:?} (expected auto/generic/shortrow/diagsplit/sliced)"
            )),
        }
    }
}

/// A resolved kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Bounds-checked CSR loop.
    Generic,
    /// Unchecked-indexing CSR loop.
    ShortRow,
    /// Dense diagonal + split off-diagonal CSR.
    DiagSplit,
    /// Lane-interleaved sliced layout.
    Sliced,
}

impl KernelKind {
    /// Stable name used in reports, CSVs and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Generic => "generic",
            KernelKind::ShortRow => "shortrow",
            KernelKind::DiagSplit => "diagsplit",
            KernelKind::Sliced => "sliced",
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Column-index storage width for the layout-backed kernels (sliced and
/// shortrow). Compact `u16` indices halve index traffic — the dominant
/// non-value stream on the bandwidth-bound paper grids — and are widened
/// transparently when the matrix has more columns than the type can
/// address, so a forced narrow width is always safe.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum IndexWidthChoice {
    /// Pick the narrowest width the matrix fits (the default).
    #[default]
    Auto,
    /// Prefer `u16` indices; widened to `u32` above 65 535 columns.
    W16,
    /// Use `u32` indices (the CSR storage width).
    W32,
    /// Disable index compaction entirely. CSR stores `u32`, so this resolves
    /// to 32-bit arrays; accepted for forward compatibility and as the CI
    /// "no compaction" baseline.
    W64,
}

impl IndexWidthChoice {
    /// Parses the CLI/spec spelling (`auto`, `16`, `32`, `64`).
    pub fn parse(s: &str) -> Result<IndexWidthChoice, String> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(IndexWidthChoice::Auto),
            "16" => Ok(IndexWidthChoice::W16),
            "32" => Ok(IndexWidthChoice::W32),
            "64" => Ok(IndexWidthChoice::W64),
            other => Err(format!(
                "unknown index width {other:?} (expected auto/16/32/64)"
            )),
        }
    }

    /// Stable spelling for reports and CSVs.
    pub fn name(self) -> &'static str {
        match self {
            IndexWidthChoice::Auto => "auto",
            IndexWidthChoice::W16 => "16",
            IndexWidthChoice::W32 => "32",
            IndexWidthChoice::W64 => "64",
        }
    }

    /// Whether a compact `u16` layout should be used for a matrix with
    /// `ncols` columns under this choice.
    fn wants_u16(self, ncols: usize) -> bool {
        let fits = ncols <= u16::MAX as usize;
        match self {
            IndexWidthChoice::Auto | IndexWidthChoice::W16 => fits,
            IndexWidthChoice::W32 | IndexWidthChoice::W64 => false,
        }
    }
}

/// SELL-σ row-sorting policy for the sliced layout. Sorting rows by length
/// within σ-windows packs similar-length rows into the same slice, cutting
/// ragged-span padding; results are scattered back through the stored
/// permutation so they stay bitwise identical to serial. Not a spec knob —
/// `Auto` is structure-driven and deterministic; the forced variants exist
/// for tests and ablations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SellSort {
    /// Sort iff the matrix has enough full windows and sorting strictly
    /// reduces padded cells (the default).
    #[default]
    Auto,
    /// Always sort (given at least one full window).
    Always,
    /// Never sort — the PR-5 layout, byte for byte.
    Never,
}

/// One-pass structural summary of a matrix, the input to kernel selection.
/// Deterministic: a function of the matrix entries alone (never of thread
/// counts, chunk counts, or timing), so selection is reproducible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatrixProfile {
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Stored entries.
    pub nnz: usize,
    /// Longest row (diagnostic; selection keys on the short-row fraction
    /// and the sliced fill, not this).
    pub max_row_len: usize,
    /// Mean row length.
    pub mean_row_len: f64,
    /// Fraction of rows with at most 16 entries.
    pub short_row_frac: f64,
    /// Fraction of diagonal positions holding a stored entry (square part).
    pub diag_density: f64,
    /// Maximum `|i − j|` over stored entries (diagnostic — reported by the
    /// ablation tooling; [`MatrixProfile::select`] does not consume it).
    pub bandwidth: usize,
    /// Stored entries of sliceable (non-tail) rows divided by the padded
    /// slice cells they would occupy — 1.0 means a perfectly uniform layout.
    pub sliced_fill: f64,
}

impl MatrixProfile {
    /// Analyzes `m` in one `O(nrows + nnz)` pass.
    pub fn analyze(m: &CsrMatrix) -> MatrixProfile {
        let n = m.nrows();
        let row_ptr = m.row_ptr();
        let col_idx = m.col_idx();
        let nnz = m.nnz();
        let mut max_row_len = 0usize;
        let mut short_rows = 0usize;
        let mut diag_entries = 0usize;
        let mut bandwidth = 0usize;
        for i in 0..n {
            let span = row_ptr[i]..row_ptr[i + 1];
            let len = span.len();
            max_row_len = max_row_len.max(len);
            if len <= SHORT_ROW_LEN {
                short_rows += 1;
            }
            for &c in &col_idx[span] {
                let j = c as usize;
                bandwidth = bandwidth.max(i.abs_diff(j));
                if j == i {
                    diag_entries += 1;
                }
            }
        }
        // Simulated sliced layout: padded cells if consecutive LANES-rows
        // shared a slice, tail rows excluded.
        let tail = tail_threshold(nnz, n);
        let mut padded_cells = 0usize;
        let mut sliceable_nnz = 0usize;
        for s in 0..n / LANES {
            let mut width = 0usize;
            for l in 0..LANES {
                let i = s * LANES + l;
                let len = row_ptr[i + 1] - row_ptr[i];
                if len <= tail {
                    width = width.max(len);
                    sliceable_nnz += len;
                }
            }
            padded_cells += width * LANES;
        }
        let diag_positions = n.min(m.ncols());
        MatrixProfile {
            nrows: n,
            ncols: m.ncols(),
            nnz,
            max_row_len,
            mean_row_len: nnz as f64 / n.max(1) as f64,
            short_row_frac: short_rows as f64 / n.max(1) as f64,
            diag_density: diag_entries as f64 / diag_positions.max(1) as f64,
            bandwidth,
            sliced_fill: sliceable_nnz as f64 / padded_cells.max(1) as f64,
        }
    }

    /// The kernel [`KernelChoice::Auto`] resolves to for this profile.
    ///
    /// The order encodes the measured wins on this workspace's models
    /// (`repro kernels`): mostly-short rows — the shape every RAID-style
    /// generator produces — profit most from the validated unchecked loop
    /// (1.6–1.7× over generic on the paper's G=20/40 grid); near-uniform
    /// row lengths make the sliced layout's lock-step lanes the next best;
    /// a materialized diagonal on long ragged rows still pays for the split
    /// kernel. Anything else — and anything too small to amortize a layout
    /// — stays generic.
    pub fn select(&self) -> KernelKind {
        if self.nnz < MIN_KERNEL_NNZ || self.nrows < LANES {
            KernelKind::Generic
        } else if self.short_row_frac >= 0.85 {
            KernelKind::ShortRow
        } else if self.sliced_fill >= 0.9 && self.mean_row_len >= 3.0 {
            KernelKind::Sliced
        } else if self.nrows == self.ncols && self.diag_density >= 0.95 {
            KernelKind::DiagSplit
        } else {
            KernelKind::Generic
        }
    }
}

/// Rows longer than this are excluded from slices (padding would explode)
/// and from the short-row census' notion of "uniform".
fn tail_threshold(nnz: usize, nrows: usize) -> usize {
    32usize.max(4 * (nnz / nrows.max(1)))
}

/// Compact column-index storage for the layout-backed kernels: `u16` when
/// the matrix's column count fits (halving index traffic), `u32` otherwise.
/// Indices are exact integers either way, so the stored width never affects
/// results — only bytes streamed.
#[derive(Clone, Debug)]
enum PackedIdx {
    U16(Vec<u16>),
    U32(Vec<u32>),
}

impl PackedIdx {
    /// Heap bytes by allocation capacity (for plan-bytes accounting).
    fn heap_bytes(&self) -> usize {
        match self {
            PackedIdx::U16(v) => v.capacity() * std::mem::size_of::<u16>(),
            PackedIdx::U32(v) => v.capacity() * std::mem::size_of::<u32>(),
        }
    }

    /// The resolved width in bits (16 or 32).
    fn width(&self) -> u8 {
        match self {
            PackedIdx::U16(_) => 16,
            PackedIdx::U32(_) => 32,
        }
    }
}

/// Scalar access to a column index of either width. The generic loops
/// monomorphize over this; the AVX2 loops (which cannot be generic under
/// `#[target_feature]`) are stamped out per width by macro instead.
trait IdxVal: Copy {
    fn idx(self) -> usize;
}

impl IdxVal for u32 {
    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

impl IdxVal for u16 {
    #[inline(always)]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Diagonal-split layout: off-diagonal CSR plus a dense diagonal, with the
/// per-row lower-entry count so accumulation replays the CSR column order.
#[derive(Clone, Debug)]
struct DiagSplitData {
    /// Off-diagonal row spans.
    row_ptr: Vec<usize>,
    /// Per-row lower-entry count (entries with `j < i`).
    lower: Vec<u32>,
    /// Per-row select mask: all-ones when the row stores a diagonal entry,
    /// zero otherwise — consumed branchlessly (see `mul_rows`).
    dmask: Vec<u64>,
    cols: Vec<u32>,
    vals: Vec<f64>,
    diag: Vec<f64>,
}

impl DiagSplitData {
    fn build(m: &CsrMatrix) -> Option<DiagSplitData> {
        let n = m.nrows();
        if m.ncols() == 0 {
            // Degenerate: `mul_rows`' branchless select gathers `x[0]` for
            // rows without a diagonal entry, which needs `x` non-empty.
            return None;
        }
        let row_ptr_src = m.row_ptr();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut lower = Vec::with_capacity(n);
        let mut dmask = Vec::with_capacity(n);
        let mut cols = Vec::with_capacity(m.nnz());
        let mut vals = Vec::with_capacity(m.nnz());
        let mut diag = vec![0.0; n];
        row_ptr.push(0);
        for i in 0..n {
            // Rows this long cannot happen through CooBuilder, but `lower`
            // must never truncate.
            if row_ptr_src[i + 1] - row_ptr_src[i] > u32::MAX as usize {
                return None;
            }
            let mut lo = 0u32;
            let mut mask = 0u64;
            for (j, v) in m.row(i) {
                if j == i {
                    diag[i] = v;
                    mask = u64::MAX;
                } else {
                    if j < i {
                        lo += 1;
                    }
                    cols.push(j as u32);
                    vals.push(v);
                }
            }
            lower.push(lo);
            dmask.push(mask);
            row_ptr.push(cols.len());
        }
        Some(DiagSplitData {
            row_ptr,
            lower,
            dmask,
            cols,
            vals,
            diag,
        })
    }

    /// Refills the embedded values/diagonal from `m` — a matrix with the
    /// identical sparsity structure — reusing every structural array
    /// (`row_ptr`/`lower`/`dmask`/`cols`) untouched. Replays `build`'s row
    /// iteration, so filled positions correspond entry-for-entry.
    fn rebind(&self, m: &CsrMatrix) -> DiagSplitData {
        let mut d = self.clone();
        let mut k = 0usize;
        for i in 0..m.nrows() {
            let mut diag = 0.0;
            for (j, v) in m.row(i) {
                if j == i {
                    diag = v;
                } else {
                    d.vals[k] = v;
                    k += 1;
                }
            }
            d.diag[i] = diag;
        }
        debug_assert_eq!(k, d.vals.len(), "rebind matrix has a different pattern");
        d
    }

    /// # Safety
    /// Requires `cols[k] < x.len()` for all stored entries and
    /// `range.end <= diag.len() == x-compatible nrows` (validated by
    /// [`Kernel::build`] and `mul_rows`' asserts).
    ///
    /// The per-row body is branchless on purpose: the original per-row
    /// `if has_diag` flag branch measurably dragged this kernel below its
    /// unchecked-CSR prototype, so the diagonal contribution is now a
    /// bitwise select — `acc + diag[i]·x[i]` is always computed, and the
    /// row's mask picks the updated or the untouched accumulator. Rows
    /// without a stored diagonal keep their exact accumulator bits (the
    /// discarded product may be `NaN`/`±0.0`-polluting for non-finite `x`;
    /// the select never lets it reach the result), so the lower → diagonal
    /// → upper accumulation order stays bitwise identical to serial CSR.
    unsafe fn mul_rows(&self, x: &[f64], out: &mut [f64], range: std::ops::Range<usize>) {
        unsafe {
            for (local, i) in range.enumerate() {
                let s = *self.row_ptr.get_unchecked(i);
                let e = *self.row_ptr.get_unchecked(i + 1);
                let lo = s + *self.lower.get_unchecked(i) as usize;
                let mut acc = 0.0;
                for k in s..lo {
                    acc += self.vals.get_unchecked(k)
                        * x.get_unchecked(*self.cols.get_unchecked(k) as usize);
                }
                let mask = *self.dmask.get_unchecked(i);
                // Masked gather index: `i` when the row stores a diagonal
                // entry (then `i < ncols` necessarily), else 0 — always in
                // bounds even for non-square matrices, and the product is
                // discarded by the select below anyway.
                let di = i & mask as usize;
                let with_diag = acc + self.diag.get_unchecked(i) * x.get_unchecked(di);
                acc = f64::from_bits((with_diag.to_bits() & mask) | (acc.to_bits() & !mask));
                for k in lo..e {
                    acc += self.vals.get_unchecked(k)
                        * x.get_unchecked(*self.cols.get_unchecked(k) as usize);
                }
                *out.get_unchecked_mut(local) = acc;
            }
        }
    }

    /// Blocked variant of [`DiagSplitData::mul_rows`]: `k` interleaved
    /// right-hand sides per matrix pass, each column replaying the exact
    /// lower → masked-diagonal → upper accumulation (including the bitwise
    /// select), so column `j` matches the single-vector kernel bit for bit.
    ///
    /// # Safety
    /// Contract of [`DiagSplitData::mul_rows`], with `x`/`out` holding `k`
    /// interleaved columns.
    unsafe fn mul_rows_block(
        &self,
        x: &[f64],
        out: &mut [f64],
        range: std::ops::Range<usize>,
        k: usize,
    ) {
        // Monomorphized per width (see `mul_rows_block_rowwise`): the
        // const-size accumulator avoids a per-row memset/memcpy pair.
        unsafe {
            match k {
                1 => self.mul_rows_block_k::<1>(x, out, range),
                2 => self.mul_rows_block_k::<2>(x, out, range),
                3 => self.mul_rows_block_k::<3>(x, out, range),
                4 => self.mul_rows_block_k::<4>(x, out, range),
                5 => self.mul_rows_block_k::<5>(x, out, range),
                6 => self.mul_rows_block_k::<6>(x, out, range),
                7 => self.mul_rows_block_k::<7>(x, out, range),
                8 => self.mul_rows_block_k::<8>(x, out, range),
                _ => unreachable!("rhs block validated against MAX_RHS_BLOCK"),
            }
        }
    }

    /// Const-width body of [`DiagSplitData::mul_rows_block`].
    ///
    /// # Safety
    /// Contract of [`DiagSplitData::mul_rows_block`] with `k = K`.
    unsafe fn mul_rows_block_k<const K: usize>(
        &self,
        x: &[f64],
        out: &mut [f64],
        range: std::ops::Range<usize>,
    ) {
        unsafe {
            for (local, i) in range.enumerate() {
                let s = *self.row_ptr.get_unchecked(i);
                let e = *self.row_ptr.get_unchecked(i + 1);
                let lo = s + *self.lower.get_unchecked(i) as usize;
                let mut acc = [0.0f64; K];
                for kk in s..lo {
                    let v = *self.vals.get_unchecked(kk);
                    let c = *self.cols.get_unchecked(kk) as usize * K;
                    for (j, a) in acc.iter_mut().enumerate() {
                        *a += v * x.get_unchecked(c + j);
                    }
                }
                let mask = *self.dmask.get_unchecked(i);
                let di = (i & mask as usize) * K;
                let d = *self.diag.get_unchecked(i);
                for (j, a) in acc.iter_mut().enumerate() {
                    let with_diag = *a + d * x.get_unchecked(di + j);
                    *a = f64::from_bits((with_diag.to_bits() & mask) | (a.to_bits() & !mask));
                }
                for kk in lo..e {
                    let v = *self.vals.get_unchecked(kk);
                    let c = *self.cols.get_unchecked(kk) as usize * K;
                    for (j, a) in acc.iter_mut().enumerate() {
                        *a += v * x.get_unchecked(c + j);
                    }
                }
                for (j, a) in acc.iter().enumerate() {
                    *out.get_unchecked_mut(local * K + j) = *a;
                }
            }
        }
    }
}

/// Sentinel length marking a tail row (excluded from its slice).
const TAIL_SENTINEL: u32 = u32::MAX;

/// SELL-like sliced layout over the full `LANES`-row slices of the matrix;
/// the ragged tail (last partial slice) and overlong rows fall back to the
/// row-wise kernel.
///
/// With SELL-σ sorting enabled (`row_map` present), rows are reordered by
/// length **within σ-row windows** before slicing; the stored stable
/// permutation scatters each lane's result back to its original row, so
/// sorted layouts stay bitwise identical to serial. Because sorting never
/// crosses a window boundary, a σ-window's original rows are exactly the
/// rows `w·σ .. (w+1)·σ` — whole windows inside a chunk can execute sliced
/// and scatter safely, while partially covered windows fall back to
/// row-wise execution on the original matrix.
#[derive(Clone, Debug)]
struct SlicedData {
    /// Start of each full slice in `vals`/`cols` (`full_slices + 1` ends).
    slice_ptr: Vec<usize>,
    /// Per-slice minimum sliceable row length (the unpredicated span).
    min_len: Vec<u32>,
    /// Per-**position** entry counts (position = sorted position under
    /// SELL-σ, original row otherwise); `TAIL_SENTINEL` marks rows handled
    /// row-wise.
    lens: Vec<u32>,
    /// Lane-interleaved values, padded with zeros (never accumulated).
    vals: Vec<f64>,
    /// Lane-interleaved columns, `u16`-compacted when the matrix fits
    /// (padding repeats column 0 — never read).
    cols: PackedIdx,
    /// Tail-row **original** indices (ascending), handled row-wise.
    tail_rows: Vec<u32>,
    /// SELL-σ permutation: sorted position → original row. `None` for
    /// unsorted layouts.
    row_map: Option<Vec<u32>>,
}

impl SlicedData {
    fn build(m: &CsrMatrix, compact: bool, sort: SellSort) -> SlicedData {
        let n = m.nrows();
        let rp = m.row_ptr();
        let mvals = m.values();
        let mcols = m.col_idx();
        let tail = tail_threshold(m.nnz(), n);
        let windows = n / SIGMA;
        let row_len = |i: usize| rp[i + 1] - rp[i];
        // SELL-σ decision. The padding estimate mirrors the layout (tail
        // rows excluded from widths); `Auto` sorts only when the matrix has
        // enough full windows for the forfeited window-boundary slices not
        // to matter and sorting strictly shrinks the padded layout — a
        // deterministic function of the structure alone.
        let perm: Option<Vec<u32>> = if sort != SellSort::Never && windows > 0 {
            let mut order: Vec<u32> = (0..(windows * SIGMA) as u32).collect();
            for w in 0..windows {
                order[w * SIGMA..(w + 1) * SIGMA].sort_by_key(|&r| (row_len(r as usize), r));
            }
            let padded = |pos_row: &dyn Fn(usize) -> usize| -> usize {
                let mut cells = 0usize;
                for s in 0..windows * WINDOW_SLICES {
                    let mut w = 0usize;
                    for l in 0..LANES {
                        let len = row_len(pos_row(s * LANES + l));
                        if len <= tail {
                            w = w.max(len);
                        }
                    }
                    cells += w * LANES;
                }
                cells
            };
            let keep = match sort {
                SellSort::Always => true,
                _ => windows >= 4 && padded(&|p| order[p] as usize) < padded(&|p| p),
            };
            keep.then_some(order)
        } else {
            None
        };
        let full = match &perm {
            Some(_) => windows * WINDOW_SLICES,
            None => n / LANES,
        };
        let pos_row = |p: usize| -> usize {
            match &perm {
                Some(o) => o[p] as usize,
                None => p,
            }
        };
        let mut slice_ptr = Vec::with_capacity(full + 1);
        let mut min_len = Vec::with_capacity(full);
        let mut lens = vec![0u32; full * LANES];
        let mut tail_rows = Vec::new();
        slice_ptr.push(0);
        let mut off = 0usize;
        for s in 0..full {
            let mut width = 0usize;
            let mut lo = u32::MAX;
            let mut slice_nnz = 0usize;
            for l in 0..LANES {
                let p = s * LANES + l;
                let len = row_len(pos_row(p));
                if len > tail {
                    lens[p] = TAIL_SENTINEL;
                    lo = 0;
                } else {
                    lens[p] = len as u32;
                    width = width.max(len);
                    lo = lo.min(len as u32);
                    slice_nnz += len;
                }
            }
            // Fill guard: a slice whose padding would more than double its
            // stored entries (one long row among short ones) is demoted to
            // row-wise execution wholesale — this bounds the whole layout
            // at ≤ 2× the matrix's entries, keeps ragged slices off the
            // predicated slow path, and keeps cached-layout bytes
            // accountable.
            if width * LANES > 2 * slice_nnz.max(1) {
                for l in 0..LANES {
                    lens[s * LANES + l] = TAIL_SENTINEL;
                }
                width = 0;
                lo = 0;
            }
            for l in 0..LANES {
                let p = s * LANES + l;
                if lens[p] == TAIL_SENTINEL {
                    tail_rows.push(pos_row(p) as u32);
                }
            }
            off += width * LANES;
            min_len.push(lo);
            slice_ptr.push(off);
        }
        // The row-wise fallback walks tail rows by original index.
        tail_rows.sort_unstable();
        let mut vals = vec![0.0f64; off];
        let mut cols32 = vec![0u32; off];
        // Index-based on purpose: `s` addresses slice_ptr, lens, and the
        // position space in lock-step.
        #[allow(clippy::needless_range_loop)]
        for s in 0..full {
            let base = slice_ptr[s];
            for l in 0..LANES {
                let p = s * LANES + l;
                if lens[p] == TAIL_SENTINEL {
                    continue;
                }
                let i = pos_row(p);
                for (j, k) in (rp[i]..rp[i + 1]).enumerate() {
                    vals[base + j * LANES + l] = mvals[k];
                    cols32[base + j * LANES + l] = mcols[k];
                }
            }
        }
        let cols = if compact {
            PackedIdx::U16(cols32.iter().map(|&c| c as u16).collect())
        } else {
            PackedIdx::U32(cols32)
        };
        SlicedData {
            slice_ptr,
            min_len,
            lens,
            vals,
            cols,
            tail_rows,
            row_map: perm,
        }
    }

    /// Refills the lane-interleaved values from `m` — a matrix with the
    /// identical sparsity structure — reusing the slice geometry, compacted
    /// columns, tail list, and SELL-σ permutation untouched (padding cells
    /// keep their zeros). Replays `build`'s fill loop position-for-position.
    fn rebind(&self, m: &CsrMatrix) -> SlicedData {
        let mut out = self.clone();
        let rp = m.row_ptr();
        let mvals = m.values();
        let full = self.slice_ptr.len() - 1;
        #[allow(clippy::needless_range_loop)]
        for s in 0..full {
            let base = self.slice_ptr[s];
            for l in 0..LANES {
                let p = s * LANES + l;
                if self.lens[p] == TAIL_SENTINEL {
                    continue;
                }
                let i = match &self.row_map {
                    Some(o) => o[p] as usize,
                    None => p,
                };
                for (j, k) in (rp[i]..rp[i + 1]).enumerate() {
                    out.vals[base + j * LANES + l] = mvals[k];
                }
            }
        }
        out
    }

    /// The execution granule: `(rows per granule, number of full granules)`.
    /// Unsorted layouts execute whole `LANES`-row slices; σ-sorted layouts
    /// must execute whole σ-windows so the scatter stays inside the chunk.
    #[inline]
    fn granule(&self) -> (usize, usize) {
        let full = self.slice_ptr.len() - 1;
        match &self.row_map {
            Some(_) => (SIGMA, full / WINDOW_SLICES),
            None => (LANES, full),
        }
    }

    /// Output index for a slice lane: the scatter target under SELL-σ, the
    /// lane's own row otherwise.
    ///
    /// # Safety
    /// `row0 + l` must be a valid layout position whose output row lies at
    /// or after `out_base` (guaranteed by granule-aligned execution).
    #[inline(always)]
    unsafe fn lane_out(&self, row0: usize, l: usize, out_base: usize) -> usize {
        match &self.row_map {
            Some(rm) => unsafe { *rm.get_unchecked(row0 + l) as usize - out_base },
            None => row0 + l - out_base,
        }
    }

    /// # Safety
    /// Same contract as [`DiagSplitData::mul_rows`]; additionally `m` must
    /// be the matrix this layout was built from, and `backend` must be
    /// resolved ([`crate::simd::resolve`]) so a SIMD variant only runs on
    /// hardware that supports it.
    unsafe fn mul_rows(
        &self,
        m: &CsrMatrix,
        x: &[f64],
        out: &mut [f64],
        range: std::ops::Range<usize>,
        backend: Backend,
    ) {
        let (g, full_g) = self.granule();
        let first_g = range.start.div_ceil(g);
        let last_g = (range.end / g).min(full_g);
        if first_g >= last_g {
            // No whole granule inside the chunk: row-wise covers everything.
            unsafe { mul_rows_unchecked(m, x, out, range) };
            return;
        }
        unsafe {
            // Head rows before the first whole granule.
            let head = range.start..first_g * g;
            if !head.is_empty() {
                mul_rows_unchecked(m, x, &mut out[..head.len()], head.clone());
            }
            let sl = g / LANES;
            self.slices_dispatch(x, out, range.start, first_g * sl, last_g * sl, backend);
            // Tail rows inside the sliced span, row-wise (original indices).
            let lo_row = (first_g * g) as u32;
            let hi_row = (last_g * g) as u32;
            let a = self.tail_rows.partition_point(|&r| r < lo_row);
            let b = self.tail_rows.partition_point(|&r| r < hi_row);
            for &i in &self.tail_rows[a..b] {
                let i = i as usize;
                let local = i - range.start;
                mul_rows_unchecked(m, x, &mut out[local..local + 1], i..i + 1);
            }
            // Rows after the last whole granule (including the matrix's own
            // ragged final slice).
            let rest = last_g * g..range.end;
            if !rest.is_empty() {
                let local = rest.start - range.start;
                mul_rows_unchecked(m, x, &mut out[local..], rest);
            }
        }
    }

    /// Backend × index-width dispatch for whole slices `first..last`.
    ///
    /// # Safety
    /// Contract of [`SlicedData::mul_rows`] (which delegates here).
    unsafe fn slices_dispatch(
        &self,
        x: &[f64],
        out: &mut [f64],
        out_base: usize,
        first: usize,
        last: usize,
        backend: Backend,
    ) {
        unsafe {
            match (backend, &self.cols) {
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                (Backend::Sse2, PackedIdx::U32(c)) => {
                    self.slices_sse2(c, x, out, out_base, first, last)
                }
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                (Backend::Sse2, PackedIdx::U16(c)) => {
                    self.slices_sse2(c, x, out, out_base, first, last)
                }
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                (Backend::Avx2, PackedIdx::U32(c)) => {
                    self.slices_avx2_u32(c, x, out, out_base, first, last)
                }
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                (Backend::Avx2, PackedIdx::U16(c)) => {
                    self.slices_avx2_u16(c, x, out, out_base, first, last)
                }
                // Scalar — and, in a non-SIMD build, whatever resolve()
                // could not honor (unreachable in practice; scalar is still
                // a correct answer).
                (_, PackedIdx::U32(c)) => self.slices_scalar(c, x, out, out_base, first, last),
                (_, PackedIdx::U16(c)) => self.slices_scalar(c, x, out, out_base, first, last),
            }
        }
    }

    /// Scalar slice loop over whole slices `first..last`. `out_base` is the
    /// chunk's first row (out is chunk-local).
    ///
    /// # Safety
    /// Same contract as `mul_rows` (which delegates here); `cols` must be
    /// this layout's own index array.
    // The lane loops are index-based on purpose: `l` addresses the
    // accumulator array and the interleaved layout arrays in lock-step —
    // the shape the compiler autovectorizes.
    #[allow(clippy::needless_range_loop)]
    unsafe fn slices_scalar<I: IdxVal>(
        &self,
        cols: &[I],
        x: &[f64],
        out: &mut [f64],
        out_base: usize,
        first: usize,
        last: usize,
    ) {
        unsafe {
            for s in first..last {
                let base = *self.slice_ptr.get_unchecked(s);
                let width = (*self.slice_ptr.get_unchecked(s + 1) - base) / LANES;
                let row0 = s * LANES;
                let mut acc = [0.0f64; LANES];
                // Lock-step span: all lanes active, no predication.
                let lo = *self.min_len.get_unchecked(s) as usize;
                for j in 0..lo {
                    let o = base + j * LANES;
                    for l in 0..LANES {
                        acc[l] += self.vals.get_unchecked(o + l)
                            * x.get_unchecked(cols.get_unchecked(o + l).idx());
                    }
                }
                // Ragged span: per-lane length gates each accumulation, so
                // padded cells are never added (bitwise identity).
                for j in lo..width {
                    let o = base + j * LANES;
                    for l in 0..LANES {
                        let len = *self.lens.get_unchecked(row0 + l);
                        if len != TAIL_SENTINEL && j < len as usize {
                            acc[l] += self.vals.get_unchecked(o + l)
                                * x.get_unchecked(cols.get_unchecked(o + l).idx());
                        }
                    }
                }
                for l in 0..LANES {
                    if *self.lens.get_unchecked(row0 + l) != TAIL_SENTINEL {
                        *out.get_unchecked_mut(self.lane_out(row0, l, out_base)) = acc[l];
                    }
                }
            }
        }
    }

    /// Blocked counterpart of [`SlicedData::mul_rows`]: `k` interleaved
    /// right-hand sides per pass of the layout.
    ///
    /// # Safety
    /// Contract of [`SlicedData::mul_rows`], with `x`/`out` holding `k`
    /// interleaved columns.
    unsafe fn mul_rows_block(
        &self,
        m: &CsrMatrix,
        x: &[f64],
        out: &mut [f64],
        range: std::ops::Range<usize>,
        k: usize,
        backend: Backend,
    ) {
        let (g, full_g) = self.granule();
        let first_g = range.start.div_ceil(g);
        let last_g = (range.end / g).min(full_g);
        if first_g >= last_g {
            unsafe { block_rowwise_mat(m, x, out, range, k) };
            return;
        }
        unsafe {
            let head = range.start..first_g * g;
            if !head.is_empty() {
                block_rowwise_mat(m, x, &mut out[..head.len() * k], head.clone(), k);
            }
            let sl = g / LANES;
            self.slices_block_dispatch(x, out, range.start, first_g * sl, last_g * sl, k, backend);
            let lo_row = (first_g * g) as u32;
            let hi_row = (last_g * g) as u32;
            let a = self.tail_rows.partition_point(|&r| r < lo_row);
            let b = self.tail_rows.partition_point(|&r| r < hi_row);
            for &i in &self.tail_rows[a..b] {
                let i = i as usize;
                let local = (i - range.start) * k;
                block_rowwise_mat(m, x, &mut out[local..local + k], i..i + 1, k);
            }
            let rest = last_g * g..range.end;
            if !rest.is_empty() {
                let local = (rest.start - range.start) * k;
                block_rowwise_mat(m, x, &mut out[local..], rest, k);
            }
        }
    }

    /// Backend × index-width dispatch for blocked whole slices. SIMD
    /// variants need `k` divisible by their lane count; anything else runs
    /// the scalar loop (bitwise identical either way).
    ///
    /// # Safety
    /// Contract of [`SlicedData::mul_rows_block`].
    #[allow(clippy::too_many_arguments)]
    unsafe fn slices_block_dispatch(
        &self,
        x: &[f64],
        out: &mut [f64],
        out_base: usize,
        first: usize,
        last: usize,
        k: usize,
        backend: Backend,
    ) {
        unsafe {
            match (backend, &self.cols) {
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                (Backend::Avx2, PackedIdx::U32(c)) if k.is_multiple_of(4) => {
                    self.slices_block_avx2_u32(c, x, out, out_base, first, last, k)
                }
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                (Backend::Avx2, PackedIdx::U16(c)) if k.is_multiple_of(4) => {
                    self.slices_block_avx2_u16(c, x, out, out_base, first, last, k)
                }
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                (Backend::Avx2 | Backend::Sse2, PackedIdx::U32(c)) if k.is_multiple_of(2) => {
                    self.slices_block_sse2(c, x, out, out_base, first, last, k)
                }
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                (Backend::Avx2 | Backend::Sse2, PackedIdx::U16(c)) if k.is_multiple_of(2) => {
                    self.slices_block_sse2(c, x, out, out_base, first, last, k)
                }
                (_, PackedIdx::U32(c)) => {
                    self.slices_block_scalar(c, x, out, out_base, first, last, k)
                }
                (_, PackedIdx::U16(c)) => {
                    self.slices_block_scalar(c, x, out, out_base, first, last, k)
                }
            }
        }
    }

    /// Scalar blocked slice loop, lane-major: each lane (one row) streams
    /// its entries once and advances all `k` columns with independent
    /// accumulators in CSR entry order — per-column bitwise identity by
    /// construction, no predication needed (each lane uses its own length).
    ///
    /// # Safety
    /// Contract of [`SlicedData::mul_rows_block`].
    #[allow(clippy::too_many_arguments)]
    unsafe fn slices_block_scalar<I: IdxVal>(
        &self,
        cols: &[I],
        x: &[f64],
        out: &mut [f64],
        out_base: usize,
        first: usize,
        last: usize,
        k: usize,
    ) {
        // Monomorphized per width: the const-size accumulator avoids a
        // per-lane memset/memcpy pair that otherwise dominates short rows.
        unsafe {
            match k {
                1 => self.slices_block_scalar_k::<I, 1>(cols, x, out, out_base, first, last),
                2 => self.slices_block_scalar_k::<I, 2>(cols, x, out, out_base, first, last),
                3 => self.slices_block_scalar_k::<I, 3>(cols, x, out, out_base, first, last),
                4 => self.slices_block_scalar_k::<I, 4>(cols, x, out, out_base, first, last),
                5 => self.slices_block_scalar_k::<I, 5>(cols, x, out, out_base, first, last),
                6 => self.slices_block_scalar_k::<I, 6>(cols, x, out, out_base, first, last),
                7 => self.slices_block_scalar_k::<I, 7>(cols, x, out, out_base, first, last),
                8 => self.slices_block_scalar_k::<I, 8>(cols, x, out, out_base, first, last),
                _ => unreachable!("rhs block validated against MAX_RHS_BLOCK"),
            }
        }
    }

    /// Const-width body of [`SlicedData::slices_block_scalar`].
    ///
    /// # Safety
    /// Contract of [`SlicedData::mul_rows_block`] with `k = K`.
    unsafe fn slices_block_scalar_k<I: IdxVal, const K: usize>(
        &self,
        cols: &[I],
        x: &[f64],
        out: &mut [f64],
        out_base: usize,
        first: usize,
        last: usize,
    ) {
        unsafe {
            for s in first..last {
                let base = *self.slice_ptr.get_unchecked(s);
                let row0 = s * LANES;
                for l in 0..LANES {
                    let len = *self.lens.get_unchecked(row0 + l);
                    if len == TAIL_SENTINEL {
                        continue;
                    }
                    let mut acc = [0.0f64; K];
                    for j in 0..len as usize {
                        let o = base + j * LANES + l;
                        let v = *self.vals.get_unchecked(o);
                        let c = cols.get_unchecked(o).idx() * K;
                        for (jj, a) in acc.iter_mut().enumerate() {
                            *a += v * x.get_unchecked(c + jj);
                        }
                    }
                    let dst = self.lane_out(row0, l, out_base) * K;
                    for (jj, a) in acc.iter().enumerate() {
                        *out.get_unchecked_mut(dst + jj) = *a;
                    }
                }
            }
        }
    }

    /// SSE2 blocked slice loop (`k` even): per lane, each entry's value is
    /// broadcast and multiplied against contiguous 2-wide blocks of the
    /// interleaved `x` — no gathers at all, the payoff of the blocked
    /// layout. Accumulation per column stays in CSR entry order.
    ///
    /// # Safety
    /// Contract of [`SlicedData::mul_rows_block`]; SSE2 is x86_64 baseline.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[allow(clippy::too_many_arguments)]
    unsafe fn slices_block_sse2<I: IdxVal>(
        &self,
        cols: &[I],
        x: &[f64],
        out: &mut [f64],
        out_base: usize,
        first: usize,
        last: usize,
        k: usize,
    ) {
        // Monomorphized per 2-wide block count (`[T; K / 2]` needs unstable
        // const generics, so KB is passed as its own parameter).
        unsafe {
            match k / 2 {
                1 => self.slices_block_sse2_k::<I, 1>(cols, x, out, out_base, first, last),
                2 => self.slices_block_sse2_k::<I, 2>(cols, x, out, out_base, first, last),
                3 => self.slices_block_sse2_k::<I, 3>(cols, x, out, out_base, first, last),
                4 => self.slices_block_sse2_k::<I, 4>(cols, x, out, out_base, first, last),
                _ => unreachable!("rhs block validated against MAX_RHS_BLOCK"),
            }
        }
    }

    /// Const-width body of [`SlicedData::slices_block_sse2`]; `KB = k / 2`.
    ///
    /// # Safety
    /// Contract of [`SlicedData::mul_rows_block`] with `k = 2 * KB`; SSE2 is
    /// x86_64 baseline.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    unsafe fn slices_block_sse2_k<I: IdxVal, const KB: usize>(
        &self,
        cols: &[I],
        x: &[f64],
        out: &mut [f64],
        out_base: usize,
        first: usize,
        last: usize,
    ) {
        use core::arch::x86_64::*;
        unsafe {
            let xp = x.as_ptr();
            for s in first..last {
                let base = *self.slice_ptr.get_unchecked(s);
                let row0 = s * LANES;
                for l in 0..LANES {
                    let len = *self.lens.get_unchecked(row0 + l);
                    if len == TAIL_SENTINEL {
                        continue;
                    }
                    let mut acc = [_mm_setzero_pd(); MAX_RHS_BLOCK / 2];
                    for j in 0..len as usize {
                        let o = base + j * LANES + l;
                        let v = _mm_set1_pd(*self.vals.get_unchecked(o));
                        let c = cols.get_unchecked(o).idx() * (2 * KB);
                        for b in 0..KB {
                            let xv = _mm_loadu_pd(xp.add(c + 2 * b));
                            let a = acc.get_unchecked_mut(b);
                            *a = _mm_add_pd(*a, _mm_mul_pd(v, xv));
                        }
                    }
                    let dst = self.lane_out(row0, l, out_base) * (2 * KB);
                    for b in 0..KB {
                        _mm_storeu_pd(out.as_mut_ptr().add(dst + 2 * b), *acc.get_unchecked(b));
                    }
                }
            }
        }
    }
}

/// Composes a 2-lane `x` vector from two gathered columns. Plain loads +
/// one shuffle — measurably faster than `vgatherqpd` on the Xeon
/// generations this workspace targets (hardware gathers there cost more
/// than their lane count in uops). Generic over the index width.
///
/// # Safety
/// `cp[0..2]` must be readable and index into `xp`'s allocation.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline(always)]
unsafe fn gather2<I: IdxVal>(xp: *const f64, cp: *const I) -> core::arch::x86_64::__m128d {
    use core::arch::x86_64::*;
    unsafe { _mm_set_pd(*xp.add((*cp.add(1)).idx()), *xp.add((*cp.add(0)).idx())) }
}

/// Loads 8 consecutive `u32` lane indices as two i32×4 gather-index
/// vectors.
///
/// # Safety
/// `cp[o..o+8]` must be readable; AVX2 must be available.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn load_idx8_u32(
    cp: *const u32,
    o: usize,
) -> (core::arch::x86_64::__m128i, core::arch::x86_64::__m128i) {
    use core::arch::x86_64::*;
    unsafe {
        (
            _mm_loadu_si128(cp.add(o) as *const __m128i),
            _mm_loadu_si128(cp.add(o + 4) as *const __m128i),
        )
    }
}

/// Loads 8 consecutive `u16` lane indices (one 128-bit load) and
/// zero-extends them to two i32×4 gather-index vectors — the compact-index
/// fast path: half the index bytes per slice column.
///
/// # Safety
/// `cp[o..o+8]` must be readable; AVX2 must be available.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn load_idx8_u16(
    cp: *const u16,
    o: usize,
) -> (core::arch::x86_64::__m128i, core::arch::x86_64::__m128i) {
    use core::arch::x86_64::*;
    unsafe {
        let c8 = _mm_loadu_si128(cp.add(o) as *const __m128i);
        (
            _mm_cvtepu16_epi32(c8),
            _mm_cvtepu16_epi32(_mm_srli_si128::<8>(c8)),
        )
    }
}

/// Stamps out the AVX2 slice loop per index width: `#[target_feature]`
/// functions cannot be generic, so the `u16`/`u32` variants are macro
/// duplicates differing only in the index-vector load.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
macro_rules! gen_slices_avx2 {
    ($name:ident, $ity:ty, $load8:path) => {
        /// AVX2 slice loop: 8 rows as two 4-lane vectors and a
        /// blend-predicated ragged span: inactive lanes keep their
        /// accumulator bits exactly — `0.0·x[pad]` products are computed
        /// but discarded before they can touch a result, which is what
        /// keeps non-finite inputs bitwise identical to serial.
        ///
        /// # Safety
        /// Caller contract of [`SlicedData::mul_rows`], plus AVX2 must be
        /// available (guaranteed by `resolve()`), and `cols` must be this
        /// layout's own index array.
        #[target_feature(enable = "avx2")]
        unsafe fn $name(
            &self,
            cols: &[$ity],
            x: &[f64],
            out: &mut [f64],
            out_base: usize,
            first: usize,
            last: usize,
        ) {
            use core::arch::x86_64::*;
            unsafe {
                let xp = x.as_ptr();
                let vp = self.vals.as_ptr();
                let cp = cols.as_ptr();
                for s in first..last {
                    let base = *self.slice_ptr.get_unchecked(s);
                    let width = (*self.slice_ptr.get_unchecked(s + 1) - base) / LANES;
                    let row0 = s * LANES;
                    let lo = *self.min_len.get_unchecked(s) as usize;
                    let mut acc0 = _mm256_setzero_pd();
                    let mut acc1 = _mm256_setzero_pd();
                    // Lock-step span: every lane has a real entry at column
                    // offset j, so load + gather + multiply + add
                    // unpredicated. The mul/add stay separate instructions
                    // (no FMA contraction), matching the scalar loop's two
                    // roundings per product.
                    for j in 0..lo {
                        let o = base + j * LANES;
                        let (c0, c1) = $load8(cp, o);
                        let x0 = _mm256_i32gather_pd::<8>(xp, c0);
                        let x1 = _mm256_i32gather_pd::<8>(xp, c1);
                        let v0 = _mm256_loadu_pd(vp.add(o));
                        let v1 = _mm256_loadu_pd(vp.add(o + 4));
                        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(v0, x0));
                        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(v1, x1));
                    }
                    if lo < width {
                        // Ragged span: per-lane lengths (tail rows count as
                        // 0) gate each add via a blend — a padded cell's
                        // product never reaches an accumulator. Padding
                        // repeats column 0, so even inactive lanes read `x`
                        // in bounds.
                        let eff = |l: usize| -> i64 {
                            let len = *self.lens.get_unchecked(row0 + l);
                            if len == TAIL_SENTINEL {
                                0
                            } else {
                                len as i64
                            }
                        };
                        let len0 = _mm256_set_epi64x(eff(3), eff(2), eff(1), eff(0));
                        let len1 = _mm256_set_epi64x(eff(7), eff(6), eff(5), eff(4));
                        for j in lo..width {
                            let jv = _mm256_set1_epi64x(j as i64);
                            let m0 = _mm256_castsi256_pd(_mm256_cmpgt_epi64(len0, jv));
                            let m1 = _mm256_castsi256_pd(_mm256_cmpgt_epi64(len1, jv));
                            let o = base + j * LANES;
                            let (c0, c1) = $load8(cp, o);
                            let x0 = _mm256_i32gather_pd::<8>(xp, c0);
                            let x1 = _mm256_i32gather_pd::<8>(xp, c1);
                            let v0 = _mm256_loadu_pd(vp.add(o));
                            let v1 = _mm256_loadu_pd(vp.add(o + 4));
                            let s0 = _mm256_add_pd(acc0, _mm256_mul_pd(v0, x0));
                            let s1 = _mm256_add_pd(acc1, _mm256_mul_pd(v1, x1));
                            acc0 = _mm256_blendv_pd(acc0, s0, m0);
                            acc1 = _mm256_blendv_pd(acc1, s1, m1);
                        }
                    }
                    let mut accs = [0.0f64; LANES];
                    _mm256_storeu_pd(accs.as_mut_ptr(), acc0);
                    _mm256_storeu_pd(accs.as_mut_ptr().add(4), acc1);
                    for (l, &a) in accs.iter().enumerate() {
                        if *self.lens.get_unchecked(row0 + l) != TAIL_SENTINEL {
                            *out.get_unchecked_mut(self.lane_out(row0, l, out_base)) = a;
                        }
                    }
                }
            }
        }
    };
}

/// Stamps out the AVX2 **blocked** slice loop per index width: lane-major —
/// each lane streams its entries once, broadcasting the value against
/// contiguous 4-wide blocks of the interleaved `x`. No gathers and no
/// predication (each lane uses its own length); per-column accumulation
/// stays in CSR entry order.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
macro_rules! gen_slices_block_avx2 {
    ($name:ident, $body:ident, $ity:ty) => {
        /// # Safety
        /// Contract of [`SlicedData::mul_rows_block`]; `k % 4 == 0`, AVX2
        /// available, `cols` this layout's own index array.
        #[allow(clippy::too_many_arguments)]
        #[target_feature(enable = "avx2")]
        unsafe fn $name(
            &self,
            cols: &[$ity],
            x: &[f64],
            out: &mut [f64],
            out_base: usize,
            first: usize,
            last: usize,
            k: usize,
        ) {
            // Monomorphized per 4-wide block count (`[T; K / 4]` needs
            // unstable const generics, so KB is its own parameter).
            unsafe {
                match k / 4 {
                    1 => self.$body::<1>(cols, x, out, out_base, first, last),
                    2 => self.$body::<2>(cols, x, out, out_base, first, last),
                    _ => unreachable!("rhs block validated against MAX_RHS_BLOCK"),
                }
            }
        }

        /// Const-width body; `KB = k / 4`.
        ///
        /// # Safety
        /// Contract of [`SlicedData::mul_rows_block`] with `k = 4 * KB`;
        /// AVX2 available, `cols` this layout's own index array.
        #[target_feature(enable = "avx2")]
        unsafe fn $body<const KB: usize>(
            &self,
            cols: &[$ity],
            x: &[f64],
            out: &mut [f64],
            out_base: usize,
            first: usize,
            last: usize,
        ) {
            use core::arch::x86_64::*;
            unsafe {
                let xp = x.as_ptr();
                for s in first..last {
                    let base = *self.slice_ptr.get_unchecked(s);
                    let row0 = s * LANES;
                    for l in 0..LANES {
                        let len = *self.lens.get_unchecked(row0 + l);
                        if len == TAIL_SENTINEL {
                            continue;
                        }
                        let mut acc = [_mm256_setzero_pd(); MAX_RHS_BLOCK / 4];
                        for j in 0..len as usize {
                            let o = base + j * LANES + l;
                            let v = _mm256_set1_pd(*self.vals.get_unchecked(o));
                            let c = cols.get_unchecked(o).idx() * (4 * KB);
                            for b in 0..KB {
                                let xv = _mm256_loadu_pd(xp.add(c + 4 * b));
                                let a = acc.get_unchecked_mut(b);
                                *a = _mm256_add_pd(*a, _mm256_mul_pd(v, xv));
                            }
                        }
                        let dst = self.lane_out(row0, l, out_base) * (4 * KB);
                        for b in 0..KB {
                            _mm256_storeu_pd(
                                out.as_mut_ptr().add(dst + 4 * b),
                                *acc.get_unchecked(b),
                            );
                        }
                    }
                }
            }
        }
    };
}

/// AVX2/SSE2 slice loops. Each lane is a whole row, so the vector variants
/// keep every row's accumulation in CSR index order by construction — only
/// the gathers and multiplies go wide. Separate `impl` block so the
/// intrinsics (and their `#[target_feature]` functions) vanish entirely
/// from non-SIMD builds.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
impl SlicedData {
    gen_slices_avx2!(slices_avx2_u32, u32, load_idx8_u32);
    gen_slices_avx2!(slices_avx2_u16, u16, load_idx8_u16);
    gen_slices_block_avx2!(slices_block_avx2_u32, slices_block_avx2_u32_k, u32);
    gen_slices_block_avx2!(slices_block_avx2_u16, slices_block_avx2_u16_k, u16);

    /// SSE2 slice loop: 8 rows as four 2-lane vectors, `x` composed from
    /// scalar loads, and the ragged span predicated with an `f64`-compare
    /// select (SSE2 lacks 64-bit integer compares, but row lengths are
    /// exactly representable as doubles, and `cmplt_pd` + and/andnot is a
    /// bit-exact select). Per-row accumulation order is unchanged.
    ///
    /// # Safety
    /// Caller contract of [`SlicedData::mul_rows`]. SSE2 is x86_64
    /// baseline, so no runtime requirement beyond the cfg; `cols` must be
    /// this layout's own index array.
    unsafe fn slices_sse2<I: IdxVal>(
        &self,
        cols: &[I],
        x: &[f64],
        out: &mut [f64],
        out_base: usize,
        first: usize,
        last: usize,
    ) {
        use core::arch::x86_64::*;
        unsafe {
            let xp = x.as_ptr();
            let vp = self.vals.as_ptr();
            let cp = cols.as_ptr();
            for s in first..last {
                let base = *self.slice_ptr.get_unchecked(s);
                let width = (*self.slice_ptr.get_unchecked(s + 1) - base) / LANES;
                let row0 = s * LANES;
                let lo = *self.min_len.get_unchecked(s) as usize;
                let mut acc = [_mm_setzero_pd(); LANES / 2];
                for j in 0..lo {
                    let o = base + j * LANES;
                    for (h, a) in acc.iter_mut().enumerate() {
                        let xv = gather2(xp, cp.add(o + 2 * h));
                        let v = _mm_loadu_pd(vp.add(o + 2 * h));
                        *a = _mm_add_pd(*a, _mm_mul_pd(v, xv));
                    }
                }
                if lo < width {
                    // Ragged span, predicated: lane active iff j < len
                    // (tail rows count as 0 and stay inactive throughout).
                    let eff = |l: usize| -> f64 {
                        let len = *self.lens.get_unchecked(row0 + l);
                        if len == TAIL_SENTINEL {
                            0.0
                        } else {
                            len as f64
                        }
                    };
                    let lens = [
                        _mm_set_pd(eff(1), eff(0)),
                        _mm_set_pd(eff(3), eff(2)),
                        _mm_set_pd(eff(5), eff(4)),
                        _mm_set_pd(eff(7), eff(6)),
                    ];
                    for j in lo..width {
                        let jv = _mm_set1_pd(j as f64);
                        let o = base + j * LANES;
                        for (h, a) in acc.iter_mut().enumerate() {
                            let m = _mm_cmplt_pd(jv, *lens.get_unchecked(h));
                            let xv = gather2(xp, cp.add(o + 2 * h));
                            let v = _mm_loadu_pd(vp.add(o + 2 * h));
                            let sum = _mm_add_pd(*a, _mm_mul_pd(v, xv));
                            *a = _mm_or_pd(_mm_and_pd(m, sum), _mm_andnot_pd(m, *a));
                        }
                    }
                }
                let mut accs = [0.0f64; LANES];
                for (h, a) in acc.iter().enumerate() {
                    _mm_storeu_pd(accs.as_mut_ptr().add(2 * h), *a);
                }
                for (l, &a) in accs.iter().enumerate() {
                    if *self.lens.get_unchecked(row0 + l) != TAIL_SENTINEL {
                        *out.get_unchecked_mut(self.lane_out(row0, l, out_base)) = a;
                    }
                }
            }
        }
    }
}

/// Safe generic CSR loop — the reference semantics every other kernel (and
/// the spawn baseline in `parallel.rs`) must match bitwise. The single
/// generic implementation in the crate.
pub(crate) fn mul_rows_generic(
    m: &CsrMatrix,
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
) {
    let row_ptr = m.row_ptr();
    let col_idx = m.col_idx();
    let values = m.values();
    for (local, i) in range.enumerate() {
        let mut acc = 0.0;
        for k in row_ptr[i]..row_ptr[i + 1] {
            acc += values[k] * x[col_idx[k] as usize];
        }
        out[local] = acc;
    }
}

/// Row-wise CSR loop with unchecked indexing — the shortrow kernel, and the
/// fallback the sliced kernel uses for boundary and tail rows.
///
/// # Safety
/// Requires `col_idx[k] < x.len()` for every stored entry (validated once by
/// [`Kernel::build`]) and `range.end <= nrows`, `out.len() == range.len()`.
unsafe fn mul_rows_unchecked(
    m: &CsrMatrix,
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
) {
    unsafe { mul_rows_rowwise_idx(m.row_ptr(), m.col_idx(), m.values(), x, out, range) }
}

/// The unchecked row-wise loop body, generic over the index array — the
/// matrix's `u32` columns or the compact shortrow `u16` copy.
///
/// # Safety
/// Contract of [`mul_rows_unchecked`]; `cols` must describe the same
/// sparsity as `row_ptr`/`values`.
unsafe fn mul_rows_rowwise_idx<I: IdxVal>(
    row_ptr: &[usize],
    cols: &[I],
    values: &[f64],
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
) {
    unsafe {
        for (local, i) in range.enumerate() {
            let s = *row_ptr.get_unchecked(i);
            let e = *row_ptr.get_unchecked(i + 1);
            let mut acc = 0.0;
            for k in s..e {
                acc += values.get_unchecked(k) * x.get_unchecked(cols.get_unchecked(k).idx());
            }
            *out.get_unchecked_mut(local) = acc;
        }
    }
}

/// Safe blocked generic CSR loop — the blocked reference semantics: `k`
/// interleaved right-hand sides, each output column accumulated with its
/// own accumulator in the row's CSR entry order (column `j` is bitwise
/// equal to [`mul_rows_generic`] on column `j` alone).
pub(crate) fn mul_rows_block_generic(
    m: &CsrMatrix,
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
    k: usize,
) {
    // Monomorphized per width like the unchecked loops (see
    // `mul_rows_block_rowwise`): the const-size accumulator is what keeps
    // the bounds-checked ground truth within sight of them.
    match k {
        1 => mul_rows_block_generic_k::<1>(m, x, out, range),
        2 => mul_rows_block_generic_k::<2>(m, x, out, range),
        3 => mul_rows_block_generic_k::<3>(m, x, out, range),
        4 => mul_rows_block_generic_k::<4>(m, x, out, range),
        5 => mul_rows_block_generic_k::<5>(m, x, out, range),
        6 => mul_rows_block_generic_k::<6>(m, x, out, range),
        7 => mul_rows_block_generic_k::<7>(m, x, out, range),
        8 => mul_rows_block_generic_k::<8>(m, x, out, range),
        _ => unreachable!("rhs block validated against MAX_RHS_BLOCK"),
    }
}

/// Const-width body of [`mul_rows_block_generic`] (fully bounds-checked).
fn mul_rows_block_generic_k<const K: usize>(
    m: &CsrMatrix,
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
) {
    let row_ptr = m.row_ptr();
    let col_idx = m.col_idx();
    let values = m.values();
    for (local, i) in range.enumerate() {
        let mut acc = [0.0f64; K];
        for e in row_ptr[i]..row_ptr[i + 1] {
            let v = values[e];
            let c = col_idx[e] as usize * K;
            for (j, a) in acc.iter_mut().enumerate() {
                *a += v * x[c + j];
            }
        }
        out[local * K..(local + 1) * K].copy_from_slice(&acc);
    }
}

/// Unchecked blocked row-wise loop, generic over the index array. One
/// streaming pass of the row's entries advances all `k` columns.
///
/// Dispatches the runtime width to a const-generic monomorphization:
/// a `[f64; K]` accumulator compiles to straight-line register code, where
/// a runtime-length `&mut acc[..k]` costs a `memset`/`memcpy` call pair
/// per row — on short-row matrices those calls dominate the products
/// themselves. Bits are unchanged: each column's accumulation order is
/// identical at every width.
///
/// # Safety
/// Contract of [`mul_rows_rowwise_idx`], with `x`/`out` holding `k`
/// interleaved columns (`out.len() == range.len()·k`).
unsafe fn mul_rows_block_rowwise<I: IdxVal>(
    row_ptr: &[usize],
    cols: &[I],
    values: &[f64],
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
    k: usize,
) {
    unsafe {
        match k {
            1 => mul_rows_block_rowwise_k::<I, 1>(row_ptr, cols, values, x, out, range),
            2 => mul_rows_block_rowwise_k::<I, 2>(row_ptr, cols, values, x, out, range),
            3 => mul_rows_block_rowwise_k::<I, 3>(row_ptr, cols, values, x, out, range),
            4 => mul_rows_block_rowwise_k::<I, 4>(row_ptr, cols, values, x, out, range),
            5 => mul_rows_block_rowwise_k::<I, 5>(row_ptr, cols, values, x, out, range),
            6 => mul_rows_block_rowwise_k::<I, 6>(row_ptr, cols, values, x, out, range),
            7 => mul_rows_block_rowwise_k::<I, 7>(row_ptr, cols, values, x, out, range),
            8 => mul_rows_block_rowwise_k::<I, 8>(row_ptr, cols, values, x, out, range),
            _ => unreachable!("rhs block validated against MAX_RHS_BLOCK"),
        }
    }
}

/// Const-width body of [`mul_rows_block_rowwise`].
///
/// # Safety
/// Contract of [`mul_rows_block_rowwise`] with `k = K`.
unsafe fn mul_rows_block_rowwise_k<I: IdxVal, const K: usize>(
    row_ptr: &[usize],
    cols: &[I],
    values: &[f64],
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
) {
    unsafe {
        for (local, i) in range.enumerate() {
            let s = *row_ptr.get_unchecked(i);
            let e = *row_ptr.get_unchecked(i + 1);
            let mut acc = [0.0f64; K];
            for kk in s..e {
                let v = *values.get_unchecked(kk);
                let c = cols.get_unchecked(kk).idx() * K;
                for (j, a) in acc.iter_mut().enumerate() {
                    *a += v * x.get_unchecked(c + j);
                }
            }
            for (j, a) in acc.iter().enumerate() {
                *out.get_unchecked_mut(local * K + j) = *a;
            }
        }
    }
}

/// [`mul_rows_block_rowwise`] over a matrix's own CSR arrays.
///
/// # Safety
/// Contract of [`mul_rows_block_rowwise`].
unsafe fn block_rowwise_mat(
    m: &CsrMatrix,
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
    k: usize,
) {
    unsafe { mul_rows_block_rowwise(m.row_ptr(), m.col_idx(), m.values(), x, out, range, k) }
}

/// AVX2 blocked row-wise loop (`k % 4 == 0`): per entry, broadcast the
/// value and multiply against contiguous 4-wide blocks of the interleaved
/// `x` — the blocked layout turns every gather into a plain vector load.
/// Per-column accumulation stays in CSR entry order (separate mul/add, no
/// FMA), so each column is bitwise identical to the scalar loop.
///
/// # Safety
/// Contract of [`mul_rows_block_rowwise`], plus AVX2 must be available
/// (guaranteed by `resolve()`).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn mul_rows_block_rowwise_avx2(
    m: &CsrMatrix,
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
    k: usize,
) {
    // Monomorphized per 4-wide block count (`[T; K / 4]` needs unstable
    // const generics, so KB is its own parameter).
    unsafe {
        match k / 4 {
            1 => mul_rows_block_rowwise_avx2_k::<1>(m, x, out, range),
            2 => mul_rows_block_rowwise_avx2_k::<2>(m, x, out, range),
            _ => unreachable!("rhs block validated against MAX_RHS_BLOCK"),
        }
    }
}

/// Const-width body of [`mul_rows_block_rowwise_avx2`]; `KB = k / 4`.
///
/// # Safety
/// Contract of [`mul_rows_block_rowwise`] with `k = 4 * KB`, plus AVX2
/// must be available (guaranteed by `resolve()`).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn mul_rows_block_rowwise_avx2_k<const KB: usize>(
    m: &CsrMatrix,
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
) {
    use core::arch::x86_64::*;
    let row_ptr = m.row_ptr();
    let col_idx = m.col_idx();
    let values = m.values();
    unsafe {
        let xp = x.as_ptr();
        for (local, i) in range.enumerate() {
            let s = *row_ptr.get_unchecked(i);
            let e = *row_ptr.get_unchecked(i + 1);
            let mut acc = [_mm256_setzero_pd(); MAX_RHS_BLOCK / 4];
            for kk in s..e {
                let v = _mm256_set1_pd(*values.get_unchecked(kk));
                let c = *col_idx.get_unchecked(kk) as usize * (4 * KB);
                for b in 0..KB {
                    let xv = _mm256_loadu_pd(xp.add(c + 4 * b));
                    let a = acc.get_unchecked_mut(b);
                    *a = _mm256_add_pd(*a, _mm256_mul_pd(v, xv));
                }
            }
            for b in 0..KB {
                _mm256_storeu_pd(
                    out.as_mut_ptr().add(local * (4 * KB) + 4 * b),
                    *acc.get_unchecked(b),
                );
            }
        }
    }
}

/// SSE2 blocked row-wise loop (`k % 2 == 0`), same strategy two lanes at a
/// time.
///
/// # Safety
/// Contract of [`mul_rows_block_rowwise`]. SSE2 is x86_64 baseline.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
unsafe fn mul_rows_block_rowwise_sse2(
    m: &CsrMatrix,
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
    k: usize,
) {
    // Monomorphized per 2-wide block count (`[T; K / 2]` needs unstable
    // const generics, so KB is its own parameter).
    unsafe {
        match k / 2 {
            1 => mul_rows_block_rowwise_sse2_k::<1>(m, x, out, range),
            2 => mul_rows_block_rowwise_sse2_k::<2>(m, x, out, range),
            3 => mul_rows_block_rowwise_sse2_k::<3>(m, x, out, range),
            4 => mul_rows_block_rowwise_sse2_k::<4>(m, x, out, range),
            _ => unreachable!("rhs block validated against MAX_RHS_BLOCK"),
        }
    }
}

/// Const-width body of [`mul_rows_block_rowwise_sse2`]; `KB = k / 2`.
///
/// # Safety
/// Contract of [`mul_rows_block_rowwise`] with `k = 2 * KB`. SSE2 is
/// x86_64 baseline.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
unsafe fn mul_rows_block_rowwise_sse2_k<const KB: usize>(
    m: &CsrMatrix,
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
) {
    use core::arch::x86_64::*;
    let row_ptr = m.row_ptr();
    let col_idx = m.col_idx();
    let values = m.values();
    unsafe {
        let xp = x.as_ptr();
        for (local, i) in range.enumerate() {
            let s = *row_ptr.get_unchecked(i);
            let e = *row_ptr.get_unchecked(i + 1);
            let mut acc = [_mm_setzero_pd(); MAX_RHS_BLOCK / 2];
            for kk in s..e {
                let v = _mm_set1_pd(*values.get_unchecked(kk));
                let c = *col_idx.get_unchecked(kk) as usize * (2 * KB);
                for b in 0..KB {
                    let xv = _mm_loadu_pd(xp.add(c + 2 * b));
                    let a = acc.get_unchecked_mut(b);
                    *a = _mm_add_pd(*a, _mm_mul_pd(v, xv));
                }
            }
            for b in 0..KB {
                _mm_storeu_pd(
                    out.as_mut_ptr().add(local * (2 * KB) + 2 * b),
                    *acc.get_unchecked(b),
                );
            }
        }
    }
}

/// AVX2 short-row kernel: each row's products are computed four at a time
/// (vector gather + multiply), then folded into the row accumulator **one
/// by one in index order** — the horizontal reduction replays the serial
/// add sequence exactly, so only the gathers and multiplies go wide and
/// the result stays bitwise identical to serial CSR.
///
/// # Safety
/// Contract of [`mul_rows_unchecked`], plus AVX2 must be available
/// (guaranteed by `resolve()`).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn mul_rows_shortrow_avx2(
    m: &CsrMatrix,
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
) {
    use core::arch::x86_64::*;
    let row_ptr = m.row_ptr();
    let col_idx = m.col_idx();
    let values = m.values();
    unsafe {
        let xp = x.as_ptr();
        for (local, i) in range.enumerate() {
            let s = *row_ptr.get_unchecked(i);
            let e = *row_ptr.get_unchecked(i + 1);
            // The row accumulator lives in lane 0 of an xmm register; the
            // in-order horizontal reduction is add_sd + lane shuffles, so
            // no product ever round-trips through memory (stack spills
            // would re-congest the load ports this kernel is bound on).
            let mut acc = _mm_setzero_pd();
            let mut k = s;
            while k + 4 <= e {
                let c = _mm_loadu_si128(col_idx.as_ptr().add(k) as *const __m128i);
                let xv = _mm256_i32gather_pd::<8>(xp, c);
                let v = _mm256_loadu_pd(values.as_ptr().add(k));
                let p = _mm256_mul_pd(v, xv);
                // In-order horizontal reduction (NOT a tree sum): the
                // bitwise-identity contract fixes the add sequence.
                let plo = _mm256_castpd256_pd128(p);
                let phi = _mm256_extractf128_pd::<1>(p);
                acc = _mm_add_sd(acc, plo);
                acc = _mm_add_sd(acc, _mm_unpackhi_pd(plo, plo));
                acc = _mm_add_sd(acc, phi);
                acc = _mm_add_sd(acc, _mm_unpackhi_pd(phi, phi));
                k += 4;
            }
            let mut acc = _mm_cvtsd_f64(acc);
            while k < e {
                acc +=
                    values.get_unchecked(k) * x.get_unchecked(*col_idx.get_unchecked(k) as usize);
                k += 1;
            }
            *out.get_unchecked_mut(local) = acc;
        }
    }
}

/// SSE2 short-row kernel: products two at a time (gathers composed scalar),
/// folded in index order like the AVX2 variant.
///
/// # Safety
/// Contract of [`mul_rows_unchecked`].
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
unsafe fn mul_rows_shortrow_sse2(
    m: &CsrMatrix,
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
) {
    use core::arch::x86_64::*;
    let row_ptr = m.row_ptr();
    let col_idx = m.col_idx();
    let values = m.values();
    unsafe {
        for (local, i) in range.enumerate() {
            let s = *row_ptr.get_unchecked(i);
            let e = *row_ptr.get_unchecked(i + 1);
            let mut acc = _mm_setzero_pd();
            let mut k = s;
            while k + 2 <= e {
                let xv = gather2(x.as_ptr(), col_idx.as_ptr().add(k));
                let v = _mm_loadu_pd(values.as_ptr().add(k));
                let p = _mm_mul_pd(v, xv);
                // In-order register-only reduction, as in the AVX2 variant.
                acc = _mm_add_sd(acc, p);
                acc = _mm_add_sd(acc, _mm_unpackhi_pd(p, p));
                k += 2;
            }
            let mut acc = _mm_cvtsd_f64(acc);
            while k < e {
                acc +=
                    values.get_unchecked(k) * x.get_unchecked(*col_idx.get_unchecked(k) as usize);
                k += 1;
            }
            *out.get_unchecked_mut(local) = acc;
        }
    }
}

#[derive(Clone, Debug)]
enum KernelData {
    Plain,
    /// Compact `u16` copy of the matrix's column indices (shortrow kernel
    /// with a narrow index width). Embeds structure, so plans holding it
    /// record a content signature like the value-embedding layouts.
    ShortIdx(Vec<u16>),
    Diag(DiagSplitData),
    Sliced(SlicedData),
}

/// A resolved kernel bound to one matrix's structure: the selected kind plus
/// whatever auxiliary layout it needs, and the execution backend its
/// products run on. Built once per [`ChunkPlan`](crate::ChunkPlan) and
/// reused across millions of products.
#[derive(Clone, Debug)]
pub struct Kernel {
    kind: KernelKind,
    data: KernelData,
    /// Resolved execution backend. Always [`Backend::Scalar`] for the
    /// generic kernel (the bitwise ground truth stays intrinsics-free) and
    /// for diagsplit (its win is the branchless dense-diagonal access, not
    /// lane parallelism); shortrow and sliced honor the request up to what
    /// the CPU supports.
    backend: Backend,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    /// Resolved column-index width in bits (16 or 32) of the layout's index
    /// arrays; 32 for layout-free kernels (they read the CSR's own `u32`).
    index_width: u8,
    /// Whether the layout is SELL-σ row-sorted.
    sorted: bool,
}

impl Kernel {
    /// [`Kernel::build_with`] under the default (`Auto`) index-width and
    /// SELL-σ policies.
    #[cfg(test)]
    pub(crate) fn build(m: &CsrMatrix, choice: KernelChoice, backend: BackendChoice) -> Kernel {
        Kernel::build_with(m, choice, backend, IndexWidthChoice::Auto, SellSort::Auto)
    }

    /// Resolves `choice` for `m` (analyzing the matrix for `Auto`) and
    /// builds the kernel's layout; `backend` is clamped to the hardware
    /// (see [`crate::simd::resolve`]). `width` selects the column-index
    /// storage width for the layout-backed kernels (widened transparently
    /// when the matrix does not fit) and `sort` the SELL-σ row-sorting
    /// policy for the sliced layout. Unchecked kernels validate the CSR
    /// column invariant once here. Crate-internal: the only safe way to
    /// use a kernel is through a [`ChunkPlan`](crate::ChunkPlan), whose
    /// content-signature check rejects a same-sparsity different-values
    /// matrix (this type's own guard checks shape/nnz only).
    pub(crate) fn build_with(
        m: &CsrMatrix,
        choice: KernelChoice,
        backend: BackendChoice,
        width: IndexWidthChoice,
        sort: SellSort,
    ) -> Kernel {
        let kind = match choice.forced() {
            Some(kind) => kind,
            None => MatrixProfile::analyze(m).select(),
        };
        let kind = if kind != KernelKind::Generic && !columns_in_range(m) {
            // A matrix violating its own construction invariant never gets
            // an unchecked kernel (defense in depth; unreachable through
            // CooBuilder).
            KernelKind::Generic
        } else {
            kind
        };
        let compact = width.wants_u16(m.ncols());
        let (kind, data) = match kind {
            KernelKind::Generic => (kind, KernelData::Plain),
            KernelKind::ShortRow => {
                if compact {
                    let idx: Vec<u16> = m.col_idx().iter().map(|&c| c as u16).collect();
                    (kind, KernelData::ShortIdx(idx))
                } else {
                    (kind, KernelData::Plain)
                }
            }
            KernelKind::DiagSplit => match DiagSplitData::build(m) {
                Some(d) => (kind, KernelData::Diag(d)),
                None => (KernelKind::Generic, KernelData::Plain),
            },
            KernelKind::Sliced => (
                kind,
                KernelData::Sliced(SlicedData::build(m, compact, sort)),
            ),
        };
        let backend = match kind {
            KernelKind::Sliced => simd::resolve(backend),
            // Measured policy (repro kernels): the short-row kernel's
            // bitwise contract forces an in-order horizontal reduction, so
            // its vector variant is add-latency bound and *loses* to the
            // scalar loop on the grids this workspace targets — Auto keeps
            // it scalar (exactly how kernel selection encodes measured
            // wins). An explicit request still forces the vector variant.
            KernelKind::ShortRow => match backend {
                BackendChoice::Auto => Backend::Scalar,
                forced => simd::resolve(forced),
            },
            KernelKind::Generic | KernelKind::DiagSplit => Backend::Scalar,
        };
        // The AVX2 gathers consume column indices as *signed* 32-bit lanes
        // (`_mm256_i32gather_pd` sign-extends), so a column index ≥ 2³¹
        // would turn into a negative offset. Unreachable for any matrix
        // this workspace can hold, but the unsafe contract must not depend
        // on that — cap such matrices at SSE2 (whose composed gathers
        // zero-extend through `as usize`).
        let backend = if backend == Backend::Avx2 && m.ncols() > i32::MAX as usize {
            Backend::Sse2
        } else {
            backend
        };
        let (index_width, sorted) = match &data {
            KernelData::Sliced(s) => (s.cols.width(), s.row_map.is_some()),
            KernelData::ShortIdx(_) => (16, false),
            _ => (32, false),
        };
        Kernel {
            kind,
            data,
            backend,
            nrows: m.nrows(),
            ncols: m.ncols(),
            nnz: m.nnz(),
            index_width,
            sorted,
        }
    }

    /// Rebinds this kernel to `m` — a matrix with the **identical sparsity
    /// structure** but new values. Structure-only layouts (the shortrow
    /// `u16` index copy) are shared unchanged; value-embedding layouts
    /// (diagsplit, sliced) are refilled in place of a rebuild — no profile
    /// re-analysis, no SELL-σ re-sort decision, no index re-compaction. The
    /// donor's resolved kind/backend/width/sort carry over verbatim, which
    /// is exactly right: every one of those decisions is a deterministic
    /// function of the structure (plus the build-time choices), which the
    /// rebind matrix shares by contract.
    ///
    /// # Panics
    /// If `m`'s shape or nnz differ from the build matrix's. Full pattern
    /// equality is the *caller's* contract ([`crate::ChunkPlan::rebind`]
    /// asserts it against the donor matrix).
    pub(crate) fn rebind(&self, m: &CsrMatrix) -> Kernel {
        assert!(
            m.nrows() == self.nrows && m.ncols() == self.ncols && m.nnz() == self.nnz,
            "kernel rebind requires matching structure (shape/nnz differ)"
        );
        let data = match &self.data {
            KernelData::Plain => KernelData::Plain,
            KernelData::ShortIdx(idx) => KernelData::ShortIdx(idx.clone()),
            KernelData::Diag(d) => KernelData::Diag(d.rebind(m)),
            KernelData::Sliced(s) => KernelData::Sliced(s.rebind(m)),
        };
        Kernel {
            kind: self.kind,
            data,
            backend: self.backend,
            nrows: self.nrows,
            ncols: self.ncols,
            nnz: self.nnz,
            index_width: self.index_width,
            sorted: self.sorted,
        }
    }

    /// The resolved kind.
    pub(crate) fn kind(&self) -> KernelKind {
        self.kind
    }

    /// The resolved execution backend.
    pub(crate) fn backend(&self) -> Backend {
        self.backend
    }

    /// Resolved column-index width in bits (16 or 32).
    pub(crate) fn index_width(&self) -> u8 {
        self.index_width
    }

    /// Whether the layout is SELL-σ row-sorted.
    pub(crate) fn sorted(&self) -> bool {
        self.sorted
    }

    /// Whether this kernel embeds a copy of the build matrix's values
    /// (the layout-backed kinds). Layout-free kernels read every value
    /// from the matrix they are handed, so they are correct for *any*
    /// matrix of compatible shape — no content check needed.
    pub(crate) fn embeds_values(&self) -> bool {
        !matches!(self.data, KernelData::Plain)
    }

    /// Heap bytes of the auxiliary layout (zero for the layout-free
    /// kernels), by allocation capacity — what byte-bounded caches holding
    /// a plan should charge on top of the matrix itself.
    pub(crate) fn layout_bytes(&self) -> usize {
        const F: usize = std::mem::size_of::<f64>();
        const U: usize = std::mem::size_of::<u32>();
        const W: usize = std::mem::size_of::<usize>();
        match &self.data {
            KernelData::Plain => 0,
            KernelData::ShortIdx(idx) => idx.capacity() * std::mem::size_of::<u16>(),
            KernelData::Diag(d) => {
                d.row_ptr.capacity() * W
                    + d.lower.capacity() * U
                    + d.dmask.capacity() * std::mem::size_of::<u64>()
                    + d.cols.capacity() * U
                    + d.vals.capacity() * F
                    + d.diag.capacity() * F
            }
            KernelData::Sliced(s) => {
                s.slice_ptr.capacity() * W
                    + s.min_len.capacity() * U
                    + s.lens.capacity() * U
                    + s.vals.capacity() * F
                    + s.cols.heap_bytes()
                    + s.tail_rows.capacity() * U
                    + s.row_map.as_ref().map_or(0, |rm| rm.capacity() * U)
            }
        }
    }

    /// Computes rows `range` of `y = m·x` into `out` (chunk-local slice).
    ///
    /// # Panics
    /// If `m` does not match the matrix this kernel was built from
    /// (shape/nnz), or the slice lengths disagree with `range`.
    pub(crate) fn mul_rows(
        &self,
        m: &CsrMatrix,
        x: &[f64],
        out: &mut [f64],
        range: std::ops::Range<usize>,
    ) {
        assert!(
            m.nrows() == self.nrows && m.ncols() == self.ncols && m.nnz() == self.nnz,
            "kernel was built for a different matrix"
        );
        assert_eq!(x.len(), self.ncols, "x length mismatch");
        assert!(range.end <= self.nrows, "row range out of bounds");
        assert_eq!(out.len(), range.len(), "output slice mismatch");
        match &self.data {
            KernelData::Plain => match self.kind {
                KernelKind::Generic => mul_rows_generic(m, x, out, range),
                // SAFETY: columns validated in `build`, bounds asserted
                // above; `self.backend` was resolved against the CPU.
                _ => match self.backend {
                    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                    Backend::Avx2 => unsafe { mul_rows_shortrow_avx2(m, x, out, range) },
                    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                    Backend::Sse2 => unsafe { mul_rows_shortrow_sse2(m, x, out, range) },
                    _ => unsafe { mul_rows_unchecked(m, x, out, range) },
                },
            },
            // Compact shortrow: the scalar loop streams the `u16` copy
            // (half the index bytes — and scalar is shortrow's measured
            // Auto policy); the SIMD variants keep their vector index
            // loads on the matrix's own `u32` array. Bitwise identical
            // either way — indices are exact.
            // SAFETY: columns validated in `build`, bounds asserted above.
            KernelData::ShortIdx(c) => match self.backend {
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                Backend::Avx2 => unsafe { mul_rows_shortrow_avx2(m, x, out, range) },
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                Backend::Sse2 => unsafe { mul_rows_shortrow_sse2(m, x, out, range) },
                _ => unsafe { mul_rows_rowwise_idx(m.row_ptr(), c, m.values(), x, out, range) },
            },
            // SAFETY: columns validated in `build`, bounds asserted above.
            KernelData::Diag(d) => unsafe { d.mul_rows(x, out, range) },
            // SAFETY: columns validated in `build`, bounds asserted above;
            // `self.backend` was resolved against the CPU.
            KernelData::Sliced(s) => unsafe { s.mul_rows(m, x, out, range, self.backend) },
        }
    }

    /// Blocked (multi-vector) product: computes rows `range` of `Y = m·X`
    /// over `k` **interleaved** right-hand sides (`x[col·k + j]`,
    /// `out[(row − range.start)·k + j]`) in one streaming pass of the
    /// matrix. Each output column is bitwise identical to a single-vector
    /// [`Kernel::mul_rows`] call on that column — the blocked layer never
    /// trades identity for speed.
    ///
    /// # Panics
    /// As [`Kernel::mul_rows`], plus if `k` is 0 or above
    /// [`MAX_RHS_BLOCK`], or the slice lengths disagree with `range`/`k`.
    pub(crate) fn mul_rows_block(
        &self,
        m: &CsrMatrix,
        x: &[f64],
        out: &mut [f64],
        range: std::ops::Range<usize>,
        k: usize,
    ) {
        assert!((1..=MAX_RHS_BLOCK).contains(&k), "rhs block out of range");
        if k == 1 {
            // Identical bits, better-tuned single-vector loops.
            self.mul_rows(m, x, out, range);
            return;
        }
        assert!(
            m.nrows() == self.nrows && m.ncols() == self.ncols && m.nnz() == self.nnz,
            "kernel was built for a different matrix"
        );
        assert_eq!(x.len(), self.ncols * k, "x length mismatch");
        assert!(range.end <= self.nrows, "row range out of bounds");
        assert_eq!(out.len(), range.len() * k, "output slice mismatch");
        match &self.data {
            KernelData::Plain => match self.kind {
                KernelKind::Generic => mul_rows_block_generic(m, x, out, range, k),
                // SAFETY: columns validated in `build`, bounds asserted
                // above; `self.backend` was resolved against the CPU.
                _ => unsafe { self.block_rowwise_backend(m, x, out, range, k) },
            },
            // SAFETY: columns validated in `build`, bounds asserted above.
            KernelData::ShortIdx(c) => match self.backend {
                Backend::Scalar => unsafe {
                    mul_rows_block_rowwise(m.row_ptr(), c, m.values(), x, out, range, k)
                },
                _ => unsafe { self.block_rowwise_backend(m, x, out, range, k) },
            },
            // SAFETY: columns validated in `build`, bounds asserted above.
            KernelData::Diag(d) => unsafe { d.mul_rows_block(x, out, range, k) },
            // SAFETY: columns validated in `build`, bounds asserted above;
            // `self.backend` was resolved against the CPU.
            KernelData::Sliced(s) => unsafe { s.mul_rows_block(m, x, out, range, k, self.backend) },
        }
    }

    /// Blocked row-wise execution honoring the resolved backend: SIMD when
    /// `k` is divisible by the lane count, scalar otherwise (bitwise
    /// identical either way).
    ///
    /// # Safety
    /// Contract of [`mul_rows_block_rowwise`]; `self.backend` must be
    /// resolved against the CPU.
    unsafe fn block_rowwise_backend(
        &self,
        m: &CsrMatrix,
        x: &[f64],
        out: &mut [f64],
        range: std::ops::Range<usize>,
        k: usize,
    ) {
        unsafe {
            match self.backend {
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                Backend::Avx2 if k.is_multiple_of(4) => {
                    mul_rows_block_rowwise_avx2(m, x, out, range, k)
                }
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                Backend::Avx2 | Backend::Sse2 if k.is_multiple_of(2) => {
                    mul_rows_block_rowwise_sse2(m, x, out, range, k)
                }
                _ => block_rowwise_mat(m, x, out, range, k),
            }
        }
    }
}

/// Verifies the CSR construction invariant the unchecked kernels rely on.
fn columns_in_range(m: &CsrMatrix) -> bool {
    let n = m.ncols();
    m.col_idx().iter().all(|&c| (c as usize) < n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CooBuilder;

    fn dense_to_csr(rows: &[Vec<f64>]) -> CsrMatrix {
        let mut b = CooBuilder::new(rows.len(), rows[0].len());
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b.build()
    }

    fn pseudo_random(n: usize, m: usize, seed: u64, fill: f64) -> Vec<Vec<f64>> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        (0..n)
            .map(|_| {
                (0..m)
                    .map(|_| {
                        let v = next();
                        if v.abs() < 0.5 * (1.0 - fill) {
                            0.0
                        } else {
                            v
                        }
                    })
                    .collect()
            })
            .collect()
    }

    const ALL_FORCED: [KernelChoice; 4] = [
        KernelChoice::Generic,
        KernelChoice::ShortRow,
        KernelChoice::DiagSplit,
        KernelChoice::Sliced,
    ];

    /// Forced backend choices; forcing an unavailable one resolves to the
    /// widest supported backend below it, so this list is always safe.
    const ALL_BACKENDS: [BackendChoice; 4] = [
        BackendChoice::Auto,
        BackendChoice::Scalar,
        BackendChoice::Sse2,
        BackendChoice::Avx2,
    ];

    #[test]
    fn every_kernel_is_bitwise_identical_to_serial() {
        for (n, m, seed) in [
            (67usize, 67usize, 1u64),
            (123, 51, 2),
            (51, 123, 3),
            (9, 9, 4),
        ] {
            let a = dense_to_csr(&pseudo_random(n, m, seed, 0.4));
            let x: Vec<f64> = (0..m).map(|j| ((j * 37 + 11) % 23) as f64 - 11.0).collect();
            let mut want = vec![0.0; n];
            a.mul_vec_into(&x, &mut want);
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            for choice in ALL_FORCED {
                for backend in ALL_BACKENDS {
                    let kernel = Kernel::build(&a, choice, backend);
                    // Whole matrix in one chunk, and split into odd chunks.
                    let mut got = vec![1.0; n];
                    kernel.mul_rows(&a, &x, &mut got, 0..n);
                    assert_eq!(bits(&want), bits(&got), "{choice:?}/{backend:?} full");
                    let mut got = vec![1.0; n];
                    let mut start = 0;
                    while start < n {
                        let end = (start + 7).min(n);
                        kernel.mul_rows(&a, &x, &mut got[start..end], start..end);
                        start = end;
                    }
                    assert_eq!(bits(&want), bits(&got), "{choice:?}/{backend:?} chunked");
                }
            }
        }
    }

    /// Padded slice cells must never be accumulated: their `0.0 × x[pad]`
    /// is only harmless for finite `x` — with `x[0] = ∞` (padding repeats
    /// column 0) an ungated pad would turn finite rows into `NaN`. Rows
    /// that legitimately read the infinite entry must still match serial
    /// bit for bit.
    #[test]
    fn non_finite_inputs_stay_bitwise_identical() {
        // Ragged rows around a slice boundary so the sliced layout pads.
        let n = 4 * LANES;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0);
            for d in 1..=(i % 5) {
                b.push(i, (i + d) % n, -0.5 / d as f64);
            }
        }
        let a = b.build();
        let mut x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.3).sin()).collect();
        x[0] = f64::INFINITY;
        x[5] = f64::NAN;
        let mut want = vec![0.0; n];
        a.mul_vec_into(&x, &mut want);
        assert!(
            want.iter().any(|v| v.is_finite()),
            "test needs rows untouched by the non-finite entries"
        );
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        for choice in ALL_FORCED {
            for backend in ALL_BACKENDS {
                let kernel = Kernel::build(&a, choice, backend);
                let mut got = vec![0.0; n];
                kernel.mul_rows(&a, &x, &mut got, 0..n);
                assert_eq!(bits(&want), bits(&got), "{choice:?}/{backend:?}");
            }
        }
    }

    /// Adversarial shapes for the SIMD variants: empty rows, overlong tail
    /// rows (excluded from slices), a row count that is not a multiple of
    /// the lane width, and non-finite input entries — all at once. Every
    /// (kernel, backend) pair must still match serial bit for bit.
    #[test]
    fn adversarial_shapes_stay_bitwise_identical_across_backends() {
        let n = 5 * LANES + 3; // not a multiple of the lane width
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            match i % 7 {
                // Empty rows (no entries at all).
                0 => {}
                // Overlong rows: far above the tail threshold, demoted to
                // row-wise execution inside their slice.
                3 => {
                    for d in 0..n / 2 {
                        b.push(i, (i + d) % n, 0.25 + d as f64 * 1e-3);
                    }
                }
                // Short ragged rows.
                r => {
                    b.push(i, i, 2.0);
                    for d in 1..r {
                        b.push(i, (i + d * 5) % n, -0.125 / d as f64);
                    }
                }
            }
        }
        let a = b.build();
        let mut x: Vec<f64> = (0..n).map(|j| ((j * 29 + 7) % 13) as f64 - 6.0).collect();
        x[0] = f64::NEG_INFINITY;
        x[1] = f64::NAN;
        x[n - 1] = -0.0;
        let mut want = vec![0.0; n];
        a.mul_vec_into(&x, &mut want);
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        for choice in ALL_FORCED {
            for backend in ALL_BACKENDS {
                let kernel = Kernel::build(&a, choice, backend);
                let mut got = vec![0.0; n];
                kernel.mul_rows(&a, &x, &mut got, 0..n);
                assert_eq!(bits(&want), bits(&got), "{choice:?}/{backend:?} full");
                // Chunk boundaries that slice through slices.
                let mut got = vec![0.0; n];
                for (lo, hi) in [(0usize, 5usize), (5, LANES + 1), (LANES + 1, n)] {
                    kernel.mul_rows(&a, &x, &mut got[lo..hi], lo..hi);
                }
                assert_eq!(bits(&want), bits(&got), "{choice:?}/{backend:?} chunked");
            }
        }
    }

    /// Every (kernel, backend, k) blocked product must be bitwise identical
    /// per column to the serial single-vector product — including odd k
    /// (no SIMD fit), chunk boundaries through slices, and non-finite
    /// inputs.
    #[test]
    fn blocked_products_are_bitwise_identical_to_serial_columns() {
        for (n, m, seed) in [(67usize, 67usize, 1u64), (123, 51, 2), (9, 9, 4)] {
            let a = dense_to_csr(&pseudo_random(n, m, seed, 0.4));
            for k in [1usize, 2, 3, 4, 5, 8] {
                let mut x: Vec<f64> = (0..m * k)
                    .map(|j| ((j * 37 + 11) % 23) as f64 - 11.0)
                    .collect();
                x[0] = f64::INFINITY;
                if m * k > 5 {
                    x[5] = f64::NAN;
                }
                let mut want = vec![0.0; n * k];
                // Column-wise serial ground truth.
                for j in 0..k {
                    let xj: Vec<f64> = (0..m).map(|c| x[c * k + j]).collect();
                    let mut yj = vec![0.0; n];
                    a.mul_vec_into(&xj, &mut yj);
                    for r in 0..n {
                        want[r * k + j] = yj[r];
                    }
                }
                let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
                // The serial blocked reference itself.
                let mut got = vec![1.0; n * k];
                a.mul_mat_into(&x, &mut got, k);
                assert_eq!(bits(&want), bits(&got), "mul_mat_into k={k}");
                for choice in ALL_FORCED {
                    for backend in ALL_BACKENDS {
                        let kernel = Kernel::build(&a, choice, backend);
                        let mut got = vec![1.0; n * k];
                        kernel.mul_rows_block(&a, &x, &mut got, 0..n, k);
                        assert_eq!(bits(&want), bits(&got), "{choice:?}/{backend:?} k={k}");
                        let mut got = vec![1.0; n * k];
                        let mut start = 0;
                        while start < n {
                            let end = (start + 7).min(n);
                            kernel.mul_rows_block(
                                &a,
                                &x,
                                &mut got[start * k..end * k],
                                start..end,
                                k,
                            );
                            start = end;
                        }
                        assert_eq!(
                            bits(&want),
                            bits(&got),
                            "{choice:?}/{backend:?} k={k} chunked"
                        );
                    }
                }
            }
        }
    }

    /// SELL-σ sorted and compact-index layouts must stay bitwise identical
    /// to serial for both single-vector and blocked products, across
    /// backends, chunk boundaries that slice through σ-windows, and
    /// adversarial rows (empty, overlong, non-finite inputs).
    #[test]
    fn sorted_and_compact_layouts_stay_bitwise_identical() {
        let n = 2 * SIGMA + 13; // ragged beyond the last full window
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            match i % 9 {
                0 => {}
                4 => {
                    for d in 0..n / 2 {
                        b.push(i, (i + d) % n, 0.25 + d as f64 * 1e-3);
                    }
                }
                r => {
                    b.push(i, i, 2.0);
                    for d in 1..=r {
                        b.push(i, (i + d * 5) % n, -0.125 / d as f64);
                    }
                }
            }
        }
        let a = b.build();
        let mut x: Vec<f64> = (0..n).map(|j| ((j * 29 + 7) % 13) as f64 - 6.0).collect();
        x[0] = f64::NEG_INFINITY;
        x[1] = f64::NAN;
        let mut want = vec![0.0; n];
        a.mul_vec_into(&x, &mut want);
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        let widths = [
            IndexWidthChoice::Auto,
            IndexWidthChoice::W16,
            IndexWidthChoice::W32,
            IndexWidthChoice::W64,
        ];
        for sort in [SellSort::Always, SellSort::Never, SellSort::Auto] {
            for width in widths {
                for backend in ALL_BACKENDS {
                    let kernel = Kernel::build_with(&a, KernelChoice::Sliced, backend, width, sort);
                    if sort == SellSort::Always {
                        assert!(kernel.sorted(), "σ-sorting was requested");
                    }
                    let mut got = vec![0.0; n];
                    kernel.mul_rows(&a, &x, &mut got, 0..n);
                    assert_eq!(bits(&want), bits(&got), "{sort:?}/{width:?}/{backend:?}");
                    // Chunk boundaries through a σ-window.
                    let mut got = vec![0.0; n];
                    for (lo, hi) in [(0usize, 5usize), (5, SIGMA + 9), (SIGMA + 9, n)] {
                        kernel.mul_rows(&a, &x, &mut got[lo..hi], lo..hi);
                    }
                    assert_eq!(
                        bits(&want),
                        bits(&got),
                        "{sort:?}/{width:?}/{backend:?} chunked"
                    );
                    // Blocked, k=4, chunked through the window too.
                    let k = 4;
                    let xk: Vec<f64> = (0..n * k).map(|i| x[i / k]).collect();
                    let mut got = vec![0.0; n * k];
                    for (lo, hi) in [(0usize, SIGMA - 3), (SIGMA - 3, n)] {
                        kernel.mul_rows_block(&a, &xk, &mut got[lo * k..hi * k], lo..hi, k);
                    }
                    for r in 0..n {
                        for j in 0..k {
                            assert_eq!(
                                got[r * k + j].to_bits(),
                                want[r].to_bits(),
                                "{sort:?}/{width:?}/{backend:?} blocked row {r}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Index-width resolution: `u16` only when the matrix fits, widened
    /// transparently otherwise; shortrow gains a compact index copy under
    /// narrow widths and stays layout-free under wide ones.
    #[test]
    fn index_widths_resolve_and_widen_transparently() {
        let narrow = dense_to_csr(&pseudo_random(48, 48, 11, 0.4));
        let k16 = Kernel::build_with(
            &narrow,
            KernelChoice::Sliced,
            BackendChoice::Auto,
            IndexWidthChoice::W16,
            SellSort::Never,
        );
        assert_eq!(k16.index_width(), 16);
        let k64 = Kernel::build_with(
            &narrow,
            KernelChoice::Sliced,
            BackendChoice::Auto,
            IndexWidthChoice::W64,
            SellSort::Never,
        );
        assert_eq!(k64.index_width(), 32, "64 clamps to the CSR width");
        // A matrix wider than u16 can address: forced 16 widens to 32.
        let wide_cols = u16::MAX as usize + 10;
        let mut b = CooBuilder::new(2 * LANES, wide_cols);
        for i in 0..2 * LANES {
            b.push(i, i, 1.0);
            b.push(i, wide_cols - 1 - i, 2.0);
        }
        let wide = b.build();
        let kw = Kernel::build_with(
            &wide,
            KernelChoice::Sliced,
            BackendChoice::Auto,
            IndexWidthChoice::W16,
            SellSort::Never,
        );
        assert_eq!(kw.index_width(), 32, "u16 cannot address the columns");
        let x = vec![1.0; wide_cols];
        let mut want = vec![0.0; 2 * LANES];
        wide.mul_vec_into(&x, &mut want);
        let mut got = vec![0.0; 2 * LANES];
        kw.mul_rows(&wide, &x, &mut got, 0..2 * LANES);
        assert_eq!(want, got);
        // Shortrow: compact copy under narrow widths only.
        let sr16 = Kernel::build_with(
            &narrow,
            KernelChoice::ShortRow,
            BackendChoice::Scalar,
            IndexWidthChoice::W16,
            SellSort::Never,
        );
        assert_eq!(sr16.index_width(), 16);
        assert!(sr16.embeds_values(), "compact copy must trigger sig checks");
        let sr64 = Kernel::build_with(
            &narrow,
            KernelChoice::ShortRow,
            BackendChoice::Scalar,
            IndexWidthChoice::W64,
            SellSort::Never,
        );
        assert_eq!(sr64.index_width(), 32);
        assert!(!sr64.embeds_values());
        assert!(IndexWidthChoice::parse("16").is_ok());
        assert!(IndexWidthChoice::parse("48").is_err());
    }

    /// Backend resolution policy: generic and diagsplit always run scalar;
    /// shortrow/sliced honor the request up to the hardware ceiling.
    #[test]
    fn backend_resolution_respects_kind_and_hardware() {
        let m = dense_to_csr(&pseudo_random(48, 48, 11, 0.4));
        for backend in ALL_BACKENDS {
            assert_eq!(
                Kernel::build(&m, KernelChoice::Generic, backend).backend(),
                Backend::Scalar,
                "generic is the scalar ground truth"
            );
            assert_eq!(
                Kernel::build(&m, KernelChoice::DiagSplit, backend).backend(),
                Backend::Scalar,
                "diagsplit is branchless scalar"
            );
        }
        for choice in [KernelChoice::ShortRow, KernelChoice::Sliced] {
            assert_eq!(
                Kernel::build(&m, choice, BackendChoice::Scalar).backend(),
                Backend::Scalar
            );
            assert!(
                Kernel::build(&m, choice, BackendChoice::Avx2).backend() <= simd::detected(),
                "forced backends must be clamped to the hardware"
            );
        }
        // Auto: sliced takes the widest backend; shortrow stays scalar
        // (its in-order reduction is latency-bound — a measured policy).
        assert_eq!(
            Kernel::build(&m, KernelChoice::Sliced, BackendChoice::Auto).backend(),
            simd::detected()
        );
        assert_eq!(
            Kernel::build(&m, KernelChoice::ShortRow, BackendChoice::Auto).backend(),
            Backend::Scalar
        );
    }

    #[test]
    fn profile_reports_structure() {
        // Tridiagonal: full diagonal, bandwidth 1, uniform short rows.
        let n = 64;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
            }
        }
        let p = MatrixProfile::analyze(&b.build());
        assert_eq!(p.bandwidth, 1);
        assert_eq!(p.max_row_len, 3);
        assert!((p.diag_density - 1.0).abs() < 1e-12);
        assert_eq!(p.short_row_frac, 1.0);
        assert!(p.sliced_fill > 0.8, "{}", p.sliced_fill);
    }

    #[test]
    fn selection_is_deterministic_and_structure_driven() {
        // Too small => generic regardless of shape.
        let small = dense_to_csr(&pseudo_random(20, 20, 5, 0.5));
        assert_eq!(MatrixProfile::analyze(&small).select(), KernelKind::Generic);
        assert_eq!(
            Kernel::build(&small, KernelChoice::Auto, BackendChoice::Auto).kind(),
            KernelKind::Generic
        );
        // Large with uniformly short rows => shortrow, stable across
        // rebuilds (the RAID-generator shape).
        let n = 1200;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 1.0);
            for d in 1..4 {
                b.push(i, (i + d * 7) % n, 0.1);
            }
        }
        let m = b.build();
        let first = Kernel::build(&m, KernelChoice::Auto, BackendChoice::Auto).kind();
        assert_eq!(first, KernelKind::ShortRow);
        for _ in 0..3 {
            assert_eq!(
                Kernel::build(&m, KernelChoice::Auto, BackendChoice::Auto).kind(),
                first
            );
        }
        // Long ragged rows with a dense diagonal => diagsplit: row lengths
        // alternate far beyond the short-row bound and pad too much for the
        // sliced layout.
        let n = 512;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 1.0);
            let len = if i % 2 == 0 { 20 } else { 90 };
            for d in 1..len {
                b.push(i, (i + d) % n, 0.1);
            }
        }
        let m = b.build();
        let p = MatrixProfile::analyze(&m);
        assert_eq!(p.select(), KernelKind::DiagSplit, "{p:?}");
        // Long uniform rows (no padding waste) => sliced.
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            for d in 0..40 {
                b.push(i, (i + d * 3 + 1) % n, 0.1);
            }
        }
        let m = b.build();
        let p = MatrixProfile::analyze(&m);
        assert_eq!(p.select(), KernelKind::Sliced, "{p:?}");
    }

    #[test]
    fn forced_kernels_resolve_as_requested() {
        let m = dense_to_csr(&pseudo_random(40, 40, 9, 0.4));
        for choice in ALL_FORCED {
            assert_eq!(
                Kernel::build(&m, choice, BackendChoice::Auto).kind(),
                choice.forced().unwrap()
            );
        }
        assert!(KernelChoice::parse("DiagSplit").is_ok());
        assert!(KernelChoice::parse("warp").is_err());
    }

    #[test]
    #[should_panic(expected = "different matrix")]
    fn kernel_rejects_a_different_matrix() {
        let a = dense_to_csr(&pseudo_random(30, 30, 6, 0.4));
        let b = dense_to_csr(&pseudo_random(31, 31, 7, 0.4));
        let kernel = Kernel::build(&a, KernelChoice::ShortRow, BackendChoice::Auto);
        let mut out = vec![0.0; 31];
        kernel.mul_rows(&b, &vec![1.0; 31], &mut out, 0..31);
    }
}
