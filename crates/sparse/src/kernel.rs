//! Structure-adaptive SpMV kernels.
//!
//! The randomization solvers spend nearly all their time in `y = A·x` over
//! one fixed matrix, and the models the paper evaluates produce highly
//! structured generators: short rows (a handful of transitions per state), a
//! fully materialized diagonal (`P = I + Q/Λ` stores every diagonal entry),
//! near-banded couplings. A single generic CSR loop leaves measurable factors
//! on the table there, so the execution layer analyzes each matrix **once**
//! (at [`ChunkPlan`](crate::ChunkPlan) construction) and picks a kernel:
//!
//! * **generic** — the textbook bounds-checked CSR gather; the ground truth
//!   every other kernel must match bitwise, and the fallback for matrices
//!   with no exploitable structure (or too small to amortize a layout).
//! * **shortrow** — the same loop with one-time-validated unchecked indexing;
//!   wins on short-row matrices where per-element bounds checks and loop
//!   overhead rival the arithmetic.
//! * **diagsplit** — stores the diagonal densely and the off-diagonal
//!   entries in a split CSR; each row accumulates *lower entries, diagonal,
//!   upper entries* — exactly the column-sorted CSR order, so results stay
//!   bitwise identical while the diagonal's gather becomes a sequential
//!   `x[i]` access.
//! * **sliced** — a SELL-like sliced layout: groups of [`LANES`] consecutive
//!   rows store their entries lane-interleaved and padded to the slice
//!   width, so the inner loop advances all lanes in lock-step with
//!   independent accumulators (breaking the single-accumulator latency
//!   chain). Rows far longer than average are excluded from slices (they
//!   would explode the padding) and handled row-wise.
//!
//! ## Backends
//!
//! The shortrow and sliced kernels additionally come in explicit-SIMD
//! *backends* (x86_64 SSE2/AVX2 intrinsics behind the `simd` cargo feature
//! and runtime CPUID dispatch — see [`crate::simd`]): the sliced layout's
//! lanes are whole independent rows, so its vector variant is the SELL
//! strategy executed for real (vector gathers for `x`, lane-parallel
//! multiply/add, blend-predicated ragged spans); the shortrow variant
//! vectorizes each row's gathers and multiplies and folds the products
//! back **in index order** (a horizontal reduction, not a tree sum), so
//! every backend preserves the bitwise contract below. The scalar loops
//! remain the mandatory fallback, and under an `Auto` backend request the
//! shortrow kernel deliberately stays scalar — its in-order reduction is
//! add-latency bound, and the measured grids (`repro kernels`) show the
//! vector variant losing there.
//!
//! ## Bitwise identity
//!
//! Every kernel accumulates each output row's products **in the row's CSR
//! order with a single accumulator** — only *which rows* a loop iteration
//! advances differs. Padded slice positions are never accumulated: a padded
//! cell's `0.0 × x[pad_col]` is only a no-op for finite `x`, and becomes
//! `NaN` the moment the input vector carries `±inf`/`NaN` (which transient
//! iterates can, transiently, on degenerate models) — so per-lane lengths
//! gate the tail iterations instead of relying on zero padding. The
//! proptests pin every kernel to the serial [`CsrMatrix::mul_vec_into`]
//! result bit for bit.
//!
//! ## Safety
//!
//! The non-generic kernels use unchecked indexing. Soundness rests on the
//! CSR construction invariant `col < ncols` (enforced by
//! [`CooBuilder`](crate::CooBuilder) and preserved by every transform);
//! `Kernel::build` re-validates it with one `O(nnz)` scan before an
//! unchecked kernel is ever selected, and `mul_rows` asserts the matrix it
//! is handed matches the one the kernel was built from (`nrows`/`nnz`).

use crate::csr::CsrMatrix;
use crate::simd::{self, Backend, BackendChoice};

/// Lanes per slice of the sliced layout (rows advanced in lock-step).
pub const LANES: usize = 8;

/// Row length above which a row counts as "short" for selection purposes.
const SHORT_ROW_LEN: usize = 16;

/// Below this nnz no layout is built: setup would dwarf the products a
/// matrix this small ever receives, and the generic loop is already fast.
const MIN_KERNEL_NNZ: usize = 4_096;

/// A user-facing kernel selection: automatic, or one forced kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelChoice {
    /// Analyze the matrix and pick (the default).
    #[default]
    Auto,
    /// Force the generic bounds-checked CSR loop.
    Generic,
    /// Force the unrolled short-row kernel.
    ShortRow,
    /// Force the diagonal-split kernel.
    DiagSplit,
    /// Force the sliced (SELL-like) layout.
    Sliced,
}

impl KernelChoice {
    /// The forced kind, or `None` for `Auto`.
    pub fn forced(self) -> Option<KernelKind> {
        match self {
            KernelChoice::Auto => None,
            KernelChoice::Generic => Some(KernelKind::Generic),
            KernelChoice::ShortRow => Some(KernelKind::ShortRow),
            KernelChoice::DiagSplit => Some(KernelKind::DiagSplit),
            KernelChoice::Sliced => Some(KernelKind::Sliced),
        }
    }

    /// Parses the CLI/spec spelling (`auto`, `generic`, `shortrow`,
    /// `diagsplit`, `sliced`).
    pub fn parse(s: &str) -> Result<KernelChoice, String> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(KernelChoice::Auto),
            "generic" => Ok(KernelChoice::Generic),
            "shortrow" => Ok(KernelChoice::ShortRow),
            "diagsplit" => Ok(KernelChoice::DiagSplit),
            "sliced" => Ok(KernelChoice::Sliced),
            other => Err(format!(
                "unknown kernel {other:?} (expected auto/generic/shortrow/diagsplit/sliced)"
            )),
        }
    }
}

/// A resolved kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Bounds-checked CSR loop.
    Generic,
    /// Unchecked-indexing CSR loop.
    ShortRow,
    /// Dense diagonal + split off-diagonal CSR.
    DiagSplit,
    /// Lane-interleaved sliced layout.
    Sliced,
}

impl KernelKind {
    /// Stable name used in reports, CSVs and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Generic => "generic",
            KernelKind::ShortRow => "shortrow",
            KernelKind::DiagSplit => "diagsplit",
            KernelKind::Sliced => "sliced",
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One-pass structural summary of a matrix, the input to kernel selection.
/// Deterministic: a function of the matrix entries alone (never of thread
/// counts, chunk counts, or timing), so selection is reproducible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatrixProfile {
    /// Rows.
    pub nrows: usize,
    /// Columns.
    pub ncols: usize,
    /// Stored entries.
    pub nnz: usize,
    /// Longest row (diagnostic; selection keys on the short-row fraction
    /// and the sliced fill, not this).
    pub max_row_len: usize,
    /// Mean row length.
    pub mean_row_len: f64,
    /// Fraction of rows with at most 16 entries.
    pub short_row_frac: f64,
    /// Fraction of diagonal positions holding a stored entry (square part).
    pub diag_density: f64,
    /// Maximum `|i − j|` over stored entries (diagnostic — reported by the
    /// ablation tooling; [`MatrixProfile::select`] does not consume it).
    pub bandwidth: usize,
    /// Stored entries of sliceable (non-tail) rows divided by the padded
    /// slice cells they would occupy — 1.0 means a perfectly uniform layout.
    pub sliced_fill: f64,
}

impl MatrixProfile {
    /// Analyzes `m` in one `O(nrows + nnz)` pass.
    pub fn analyze(m: &CsrMatrix) -> MatrixProfile {
        let n = m.nrows();
        let row_ptr = m.row_ptr();
        let col_idx = m.col_idx();
        let nnz = m.nnz();
        let mut max_row_len = 0usize;
        let mut short_rows = 0usize;
        let mut diag_entries = 0usize;
        let mut bandwidth = 0usize;
        for i in 0..n {
            let span = row_ptr[i]..row_ptr[i + 1];
            let len = span.len();
            max_row_len = max_row_len.max(len);
            if len <= SHORT_ROW_LEN {
                short_rows += 1;
            }
            for &c in &col_idx[span] {
                let j = c as usize;
                bandwidth = bandwidth.max(i.abs_diff(j));
                if j == i {
                    diag_entries += 1;
                }
            }
        }
        // Simulated sliced layout: padded cells if consecutive LANES-rows
        // shared a slice, tail rows excluded.
        let tail = tail_threshold(nnz, n);
        let mut padded_cells = 0usize;
        let mut sliceable_nnz = 0usize;
        for s in 0..n / LANES {
            let mut width = 0usize;
            for l in 0..LANES {
                let i = s * LANES + l;
                let len = row_ptr[i + 1] - row_ptr[i];
                if len <= tail {
                    width = width.max(len);
                    sliceable_nnz += len;
                }
            }
            padded_cells += width * LANES;
        }
        let diag_positions = n.min(m.ncols());
        MatrixProfile {
            nrows: n,
            ncols: m.ncols(),
            nnz,
            max_row_len,
            mean_row_len: nnz as f64 / n.max(1) as f64,
            short_row_frac: short_rows as f64 / n.max(1) as f64,
            diag_density: diag_entries as f64 / diag_positions.max(1) as f64,
            bandwidth,
            sliced_fill: sliceable_nnz as f64 / padded_cells.max(1) as f64,
        }
    }

    /// The kernel [`KernelChoice::Auto`] resolves to for this profile.
    ///
    /// The order encodes the measured wins on this workspace's models
    /// (`repro kernels`): mostly-short rows — the shape every RAID-style
    /// generator produces — profit most from the validated unchecked loop
    /// (1.6–1.7× over generic on the paper's G=20/40 grid); near-uniform
    /// row lengths make the sliced layout's lock-step lanes the next best;
    /// a materialized diagonal on long ragged rows still pays for the split
    /// kernel. Anything else — and anything too small to amortize a layout
    /// — stays generic.
    pub fn select(&self) -> KernelKind {
        if self.nnz < MIN_KERNEL_NNZ || self.nrows < LANES {
            KernelKind::Generic
        } else if self.short_row_frac >= 0.85 {
            KernelKind::ShortRow
        } else if self.sliced_fill >= 0.9 && self.mean_row_len >= 3.0 {
            KernelKind::Sliced
        } else if self.nrows == self.ncols && self.diag_density >= 0.95 {
            KernelKind::DiagSplit
        } else {
            KernelKind::Generic
        }
    }
}

/// Rows longer than this are excluded from slices (padding would explode)
/// and from the short-row census' notion of "uniform".
fn tail_threshold(nnz: usize, nrows: usize) -> usize {
    32usize.max(4 * (nnz / nrows.max(1)))
}

/// Diagonal-split layout: off-diagonal CSR plus a dense diagonal, with the
/// per-row lower-entry count so accumulation replays the CSR column order.
#[derive(Clone, Debug)]
struct DiagSplitData {
    /// Off-diagonal row spans.
    row_ptr: Vec<usize>,
    /// Per-row lower-entry count (entries with `j < i`).
    lower: Vec<u32>,
    /// Per-row select mask: all-ones when the row stores a diagonal entry,
    /// zero otherwise — consumed branchlessly (see `mul_rows`).
    dmask: Vec<u64>,
    cols: Vec<u32>,
    vals: Vec<f64>,
    diag: Vec<f64>,
}

impl DiagSplitData {
    fn build(m: &CsrMatrix) -> Option<DiagSplitData> {
        let n = m.nrows();
        if m.ncols() == 0 {
            // Degenerate: `mul_rows`' branchless select gathers `x[0]` for
            // rows without a diagonal entry, which needs `x` non-empty.
            return None;
        }
        let row_ptr_src = m.row_ptr();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut lower = Vec::with_capacity(n);
        let mut dmask = Vec::with_capacity(n);
        let mut cols = Vec::with_capacity(m.nnz());
        let mut vals = Vec::with_capacity(m.nnz());
        let mut diag = vec![0.0; n];
        row_ptr.push(0);
        for i in 0..n {
            // Rows this long cannot happen through CooBuilder, but `lower`
            // must never truncate.
            if row_ptr_src[i + 1] - row_ptr_src[i] > u32::MAX as usize {
                return None;
            }
            let mut lo = 0u32;
            let mut mask = 0u64;
            for (j, v) in m.row(i) {
                if j == i {
                    diag[i] = v;
                    mask = u64::MAX;
                } else {
                    if j < i {
                        lo += 1;
                    }
                    cols.push(j as u32);
                    vals.push(v);
                }
            }
            lower.push(lo);
            dmask.push(mask);
            row_ptr.push(cols.len());
        }
        Some(DiagSplitData {
            row_ptr,
            lower,
            dmask,
            cols,
            vals,
            diag,
        })
    }

    /// # Safety
    /// Requires `cols[k] < x.len()` for all stored entries and
    /// `range.end <= diag.len() == x-compatible nrows` (validated by
    /// [`Kernel::build`] and `mul_rows`' asserts).
    ///
    /// The per-row body is branchless on purpose: the original per-row
    /// `if has_diag` flag branch measurably dragged this kernel below its
    /// unchecked-CSR prototype, so the diagonal contribution is now a
    /// bitwise select — `acc + diag[i]·x[i]` is always computed, and the
    /// row's mask picks the updated or the untouched accumulator. Rows
    /// without a stored diagonal keep their exact accumulator bits (the
    /// discarded product may be `NaN`/`±0.0`-polluting for non-finite `x`;
    /// the select never lets it reach the result), so the lower → diagonal
    /// → upper accumulation order stays bitwise identical to serial CSR.
    unsafe fn mul_rows(&self, x: &[f64], out: &mut [f64], range: std::ops::Range<usize>) {
        unsafe {
            for (local, i) in range.enumerate() {
                let s = *self.row_ptr.get_unchecked(i);
                let e = *self.row_ptr.get_unchecked(i + 1);
                let lo = s + *self.lower.get_unchecked(i) as usize;
                let mut acc = 0.0;
                for k in s..lo {
                    acc += self.vals.get_unchecked(k)
                        * x.get_unchecked(*self.cols.get_unchecked(k) as usize);
                }
                let mask = *self.dmask.get_unchecked(i);
                // Masked gather index: `i` when the row stores a diagonal
                // entry (then `i < ncols` necessarily), else 0 — always in
                // bounds even for non-square matrices, and the product is
                // discarded by the select below anyway.
                let di = i & mask as usize;
                let with_diag = acc + self.diag.get_unchecked(i) * x.get_unchecked(di);
                acc = f64::from_bits((with_diag.to_bits() & mask) | (acc.to_bits() & !mask));
                for k in lo..e {
                    acc += self.vals.get_unchecked(k)
                        * x.get_unchecked(*self.cols.get_unchecked(k) as usize);
                }
                *out.get_unchecked_mut(local) = acc;
            }
        }
    }
}

/// Sentinel length marking a tail row (excluded from its slice).
const TAIL_SENTINEL: u32 = u32::MAX;

/// SELL-like sliced layout over the full `LANES`-row slices of the matrix;
/// the ragged tail (last partial slice) and overlong rows fall back to the
/// row-wise kernel.
#[derive(Clone, Debug)]
struct SlicedData {
    /// Start of each full slice in `vals`/`cols` (`full_slices + 1` ends).
    slice_ptr: Vec<usize>,
    /// Per-slice minimum sliceable row length (the unpredicated span).
    min_len: Vec<u32>,
    /// Per-row entry counts; `TAIL_SENTINEL` marks rows handled row-wise.
    lens: Vec<u32>,
    /// Lane-interleaved values, padded with zeros (never accumulated).
    vals: Vec<f64>,
    /// Lane-interleaved columns (padding repeats column 0 — never read).
    cols: Vec<u32>,
    /// Tail-row indices (ascending), handled by the row-wise fallback.
    tail_rows: Vec<u32>,
}

impl SlicedData {
    fn build(m: &CsrMatrix) -> SlicedData {
        let n = m.nrows();
        let rp = m.row_ptr();
        let mvals = m.values();
        let mcols = m.col_idx();
        let tail = tail_threshold(m.nnz(), n);
        let full = n / LANES;
        let mut slice_ptr = Vec::with_capacity(full + 1);
        let mut min_len = Vec::with_capacity(full);
        let mut lens = vec![0u32; full * LANES];
        let mut tail_rows = Vec::new();
        slice_ptr.push(0);
        let mut off = 0usize;
        for s in 0..full {
            let mut width = 0usize;
            let mut lo = u32::MAX;
            let mut slice_nnz = 0usize;
            for l in 0..LANES {
                let i = s * LANES + l;
                let len = rp[i + 1] - rp[i];
                if len > tail {
                    lens[i] = TAIL_SENTINEL;
                    lo = 0;
                } else {
                    lens[i] = len as u32;
                    width = width.max(len);
                    lo = lo.min(len as u32);
                    slice_nnz += len;
                }
            }
            // Fill guard: a slice whose padding would more than double its
            // stored entries (one long row among short ones) is demoted to
            // row-wise execution wholesale — this bounds the whole layout
            // at ≤ 2× the matrix's entries, keeps ragged slices off the
            // predicated slow path, and keeps cached-layout bytes
            // accountable.
            if width * LANES > 2 * slice_nnz.max(1) {
                for l in 0..LANES {
                    lens[s * LANES + l] = TAIL_SENTINEL;
                }
                width = 0;
                lo = 0;
            }
            for l in 0..LANES {
                let i = s * LANES + l;
                if lens[i] == TAIL_SENTINEL {
                    tail_rows.push(i as u32);
                }
            }
            off += width * LANES;
            min_len.push(lo);
            slice_ptr.push(off);
        }
        let mut vals = vec![0.0f64; off];
        let mut cols = vec![0u32; off];
        // Index-based on purpose: `s` addresses slice_ptr, lens, and the
        // row space in lock-step.
        #[allow(clippy::needless_range_loop)]
        for s in 0..full {
            let base = slice_ptr[s];
            for l in 0..LANES {
                let i = s * LANES + l;
                if lens[i] == TAIL_SENTINEL {
                    continue;
                }
                for (j, k) in (rp[i]..rp[i + 1]).enumerate() {
                    vals[base + j * LANES + l] = mvals[k];
                    cols[base + j * LANES + l] = mcols[k];
                }
            }
        }
        SlicedData {
            slice_ptr,
            min_len,
            lens,
            vals,
            cols,
            tail_rows,
        }
    }

    /// # Safety
    /// Same contract as [`DiagSplitData::mul_rows`]; additionally `m` must
    /// be the matrix this layout was built from, and `backend` must be
    /// resolved ([`crate::simd::resolve`]) so a SIMD variant only runs on
    /// hardware that supports it.
    unsafe fn mul_rows(
        &self,
        m: &CsrMatrix,
        x: &[f64],
        out: &mut [f64],
        range: std::ops::Range<usize>,
        backend: Backend,
    ) {
        let full = self.slice_ptr.len() - 1;
        let first_full = range.start.div_ceil(LANES);
        let last_full = (range.end / LANES).min(full);
        if first_full >= last_full {
            // No whole slice inside the chunk: row-wise covers everything.
            unsafe { mul_rows_unchecked(m, x, out, range) };
            return;
        }
        unsafe {
            // Head rows before the first whole slice.
            let head = range.start..first_full * LANES;
            if !head.is_empty() {
                mul_rows_unchecked(m, x, &mut out[..head.len()], head.clone());
            }
            match backend {
                Backend::Scalar => self.slices_scalar(x, out, range.start, first_full, last_full),
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                Backend::Sse2 => self.slices_sse2(x, out, range.start, first_full, last_full),
                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                Backend::Avx2 => self.slices_avx2(x, out, range.start, first_full, last_full),
                // Unreachable: resolve() never yields a SIMD backend in a
                // non-SIMD build. Scalar is still a correct answer.
                #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
                _ => self.slices_scalar(x, out, range.start, first_full, last_full),
            }
            // Tail rows inside the sliced span, row-wise.
            let lo_row = (first_full * LANES) as u32;
            let hi_row = (last_full * LANES) as u32;
            let a = self.tail_rows.partition_point(|&r| r < lo_row);
            let b = self.tail_rows.partition_point(|&r| r < hi_row);
            for &i in &self.tail_rows[a..b] {
                let i = i as usize;
                let local = i - range.start;
                mul_rows_unchecked(m, x, &mut out[local..local + 1], i..i + 1);
            }
            // Rows after the last whole slice (including the matrix's own
            // ragged final slice).
            let rest = last_full * LANES..range.end;
            if !rest.is_empty() {
                let local = rest.start - range.start;
                mul_rows_unchecked(m, x, &mut out[local..], rest);
            }
        }
    }

    /// Scalar slice loop over whole slices `first..last`. `out_base` is the
    /// chunk's first row (out is chunk-local).
    ///
    /// # Safety
    /// Same contract as `mul_rows` (which delegates here).
    // The lane loops are index-based on purpose: `l` addresses the
    // accumulator array and the interleaved layout arrays in lock-step —
    // the shape the compiler autovectorizes.
    #[allow(clippy::needless_range_loop)]
    unsafe fn slices_scalar(
        &self,
        x: &[f64],
        out: &mut [f64],
        out_base: usize,
        first: usize,
        last: usize,
    ) {
        unsafe {
            for s in first..last {
                let base = *self.slice_ptr.get_unchecked(s);
                let width = (*self.slice_ptr.get_unchecked(s + 1) - base) / LANES;
                let row0 = s * LANES;
                let out0 = row0 - out_base;
                let mut acc = [0.0f64; LANES];
                // Lock-step span: all lanes active, no predication.
                let lo = *self.min_len.get_unchecked(s) as usize;
                for j in 0..lo {
                    let o = base + j * LANES;
                    for l in 0..LANES {
                        acc[l] += self.vals.get_unchecked(o + l)
                            * x.get_unchecked(*self.cols.get_unchecked(o + l) as usize);
                    }
                }
                // Ragged span: per-lane length gates each accumulation, so
                // padded cells are never added (bitwise identity).
                for j in lo..width {
                    let o = base + j * LANES;
                    for l in 0..LANES {
                        let len = *self.lens.get_unchecked(row0 + l);
                        if len != TAIL_SENTINEL && j < len as usize {
                            acc[l] += self.vals.get_unchecked(o + l)
                                * x.get_unchecked(*self.cols.get_unchecked(o + l) as usize);
                        }
                    }
                }
                for l in 0..LANES {
                    if *self.lens.get_unchecked(row0 + l) != TAIL_SENTINEL {
                        *out.get_unchecked_mut(out0 + l) = acc[l];
                    }
                }
            }
        }
    }
}

/// Composes a 2-lane `x` vector from two gathered columns. Plain loads +
/// one shuffle — measurably faster than `vgatherqpd` on the Xeon
/// generations this workspace targets (hardware gathers there cost more
/// than their lane count in uops).
///
/// # Safety
/// `cp[0..2]` must be readable and index into `xp`'s allocation.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline(always)]
unsafe fn gather2(xp: *const f64, cp: *const u32) -> core::arch::x86_64::__m128d {
    use core::arch::x86_64::*;
    unsafe { _mm_set_pd(*xp.add(*cp.add(1) as usize), *xp.add(*cp.add(0) as usize)) }
}

/// AVX2/SSE2 slice loops. Each lane is a whole row, so the vector variants
/// keep every row's accumulation in CSR index order by construction — only
/// the gathers and multiplies go wide. Separate `impl` block so the
/// intrinsics (and their `#[target_feature]` functions) vanish entirely
/// from non-SIMD builds.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
impl SlicedData {
    /// AVX2 slice loop: 8 rows as two 4-lane vectors (`x` composed from
    /// scalar loads — see [`gather2`]) and a blend-predicated ragged span:
    /// inactive lanes keep their accumulator bits exactly — `0.0·x[pad]`
    /// products are computed but discarded before they can touch a result,
    /// which is what keeps non-finite inputs bitwise identical to serial.
    ///
    /// # Safety
    /// Caller contract of [`SlicedData::mul_rows`], plus AVX2 must be
    /// available (guaranteed by `resolve()`).
    #[target_feature(enable = "avx2")]
    unsafe fn slices_avx2(
        &self,
        x: &[f64],
        out: &mut [f64],
        out_base: usize,
        first: usize,
        last: usize,
    ) {
        use core::arch::x86_64::*;
        unsafe {
            let xp = x.as_ptr();
            let vp = self.vals.as_ptr();
            let cp = self.cols.as_ptr();
            // Hardware gathers: the 8 lane indices arrive in two 128-bit
            // loads and the gather instructions carry the 8 `x` loads —
            // fewer load-port uops per column offset than composing lanes
            // from scalar loads (this kernel is load-port bound).
            let compose = |o: usize| -> (__m256d, __m256d) {
                let c0 = _mm_loadu_si128(cp.add(o) as *const __m128i);
                let c1 = _mm_loadu_si128(cp.add(o + 4) as *const __m128i);
                (
                    _mm256_i32gather_pd::<8>(xp, c0),
                    _mm256_i32gather_pd::<8>(xp, c1),
                )
            };
            for s in first..last {
                let base = *self.slice_ptr.get_unchecked(s);
                let width = (*self.slice_ptr.get_unchecked(s + 1) - base) / LANES;
                let row0 = s * LANES;
                let out0 = row0 - out_base;
                let lo = *self.min_len.get_unchecked(s) as usize;
                let mut acc0 = _mm256_setzero_pd();
                let mut acc1 = _mm256_setzero_pd();
                // Lock-step span: every lane has a real entry at column
                // offset j, so compose + multiply + add unpredicated. The
                // mul/add stay separate instructions (no FMA contraction),
                // matching the scalar loop's two roundings per product.
                for j in 0..lo {
                    let o = base + j * LANES;
                    let (x0, x1) = compose(o);
                    let v0 = _mm256_loadu_pd(vp.add(o));
                    let v1 = _mm256_loadu_pd(vp.add(o + 4));
                    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(v0, x0));
                    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(v1, x1));
                }
                if lo < width {
                    // Ragged span: per-lane lengths (tail rows count as 0)
                    // gate each add via a blend — a padded cell's product
                    // never reaches an accumulator. Padding repeats column
                    // 0, so even inactive lanes read `x` in bounds.
                    let eff = |l: usize| -> i64 {
                        let len = *self.lens.get_unchecked(row0 + l);
                        if len == TAIL_SENTINEL {
                            0
                        } else {
                            len as i64
                        }
                    };
                    let len0 = _mm256_set_epi64x(eff(3), eff(2), eff(1), eff(0));
                    let len1 = _mm256_set_epi64x(eff(7), eff(6), eff(5), eff(4));
                    for j in lo..width {
                        let jv = _mm256_set1_epi64x(j as i64);
                        let m0 = _mm256_castsi256_pd(_mm256_cmpgt_epi64(len0, jv));
                        let m1 = _mm256_castsi256_pd(_mm256_cmpgt_epi64(len1, jv));
                        let o = base + j * LANES;
                        let (x0, x1) = compose(o);
                        let v0 = _mm256_loadu_pd(vp.add(o));
                        let v1 = _mm256_loadu_pd(vp.add(o + 4));
                        let s0 = _mm256_add_pd(acc0, _mm256_mul_pd(v0, x0));
                        let s1 = _mm256_add_pd(acc1, _mm256_mul_pd(v1, x1));
                        acc0 = _mm256_blendv_pd(acc0, s0, m0);
                        acc1 = _mm256_blendv_pd(acc1, s1, m1);
                    }
                }
                let mut accs = [0.0f64; LANES];
                _mm256_storeu_pd(accs.as_mut_ptr(), acc0);
                _mm256_storeu_pd(accs.as_mut_ptr().add(4), acc1);
                for (l, &a) in accs.iter().enumerate() {
                    if *self.lens.get_unchecked(row0 + l) != TAIL_SENTINEL {
                        *out.get_unchecked_mut(out0 + l) = a;
                    }
                }
            }
        }
    }

    /// SSE2 slice loop: 8 rows as four 2-lane vectors, `x` composed from
    /// scalar loads, and the ragged span predicated with an `f64`-compare
    /// select (SSE2 lacks 64-bit integer compares, but row lengths are
    /// exactly representable as doubles, and `cmplt_pd` + and/andnot is a
    /// bit-exact select). Per-row accumulation order is unchanged.
    ///
    /// # Safety
    /// Caller contract of [`SlicedData::mul_rows`]. SSE2 is x86_64
    /// baseline, so no runtime requirement beyond the cfg.
    unsafe fn slices_sse2(
        &self,
        x: &[f64],
        out: &mut [f64],
        out_base: usize,
        first: usize,
        last: usize,
    ) {
        use core::arch::x86_64::*;
        unsafe {
            let xp = x.as_ptr();
            let vp = self.vals.as_ptr();
            let cp = self.cols.as_ptr();
            for s in first..last {
                let base = *self.slice_ptr.get_unchecked(s);
                let width = (*self.slice_ptr.get_unchecked(s + 1) - base) / LANES;
                let row0 = s * LANES;
                let out0 = row0 - out_base;
                let lo = *self.min_len.get_unchecked(s) as usize;
                let mut acc = [_mm_setzero_pd(); LANES / 2];
                for j in 0..lo {
                    let o = base + j * LANES;
                    for (h, a) in acc.iter_mut().enumerate() {
                        let xv = gather2(xp, cp.add(o + 2 * h));
                        let v = _mm_loadu_pd(vp.add(o + 2 * h));
                        *a = _mm_add_pd(*a, _mm_mul_pd(v, xv));
                    }
                }
                if lo < width {
                    // Ragged span, predicated: lane active iff j < len
                    // (tail rows count as 0 and stay inactive throughout).
                    let eff = |l: usize| -> f64 {
                        let len = *self.lens.get_unchecked(row0 + l);
                        if len == TAIL_SENTINEL {
                            0.0
                        } else {
                            len as f64
                        }
                    };
                    let lens = [
                        _mm_set_pd(eff(1), eff(0)),
                        _mm_set_pd(eff(3), eff(2)),
                        _mm_set_pd(eff(5), eff(4)),
                        _mm_set_pd(eff(7), eff(6)),
                    ];
                    for j in lo..width {
                        let jv = _mm_set1_pd(j as f64);
                        let o = base + j * LANES;
                        for (h, a) in acc.iter_mut().enumerate() {
                            let m = _mm_cmplt_pd(jv, *lens.get_unchecked(h));
                            let xv = gather2(xp, cp.add(o + 2 * h));
                            let v = _mm_loadu_pd(vp.add(o + 2 * h));
                            let sum = _mm_add_pd(*a, _mm_mul_pd(v, xv));
                            *a = _mm_or_pd(_mm_and_pd(m, sum), _mm_andnot_pd(m, *a));
                        }
                    }
                }
                let mut accs = [0.0f64; LANES];
                for (h, a) in acc.iter().enumerate() {
                    _mm_storeu_pd(accs.as_mut_ptr().add(2 * h), *a);
                }
                for (l, &a) in accs.iter().enumerate() {
                    if *self.lens.get_unchecked(row0 + l) != TAIL_SENTINEL {
                        *out.get_unchecked_mut(out0 + l) = a;
                    }
                }
            }
        }
    }
}

/// Safe generic CSR loop — the reference semantics every other kernel (and
/// the spawn baseline in `parallel.rs`) must match bitwise. The single
/// generic implementation in the crate.
pub(crate) fn mul_rows_generic(
    m: &CsrMatrix,
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
) {
    let row_ptr = m.row_ptr();
    let col_idx = m.col_idx();
    let values = m.values();
    for (local, i) in range.enumerate() {
        let mut acc = 0.0;
        for k in row_ptr[i]..row_ptr[i + 1] {
            acc += values[k] * x[col_idx[k] as usize];
        }
        out[local] = acc;
    }
}

/// Row-wise CSR loop with unchecked indexing — the shortrow kernel, and the
/// fallback the sliced kernel uses for boundary and tail rows.
///
/// # Safety
/// Requires `col_idx[k] < x.len()` for every stored entry (validated once by
/// [`Kernel::build`]) and `range.end <= nrows`, `out.len() == range.len()`.
unsafe fn mul_rows_unchecked(
    m: &CsrMatrix,
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
) {
    let row_ptr = m.row_ptr();
    let col_idx = m.col_idx();
    let values = m.values();
    unsafe {
        for (local, i) in range.enumerate() {
            let s = *row_ptr.get_unchecked(i);
            let e = *row_ptr.get_unchecked(i + 1);
            let mut acc = 0.0;
            for k in s..e {
                acc +=
                    values.get_unchecked(k) * x.get_unchecked(*col_idx.get_unchecked(k) as usize);
            }
            *out.get_unchecked_mut(local) = acc;
        }
    }
}

/// AVX2 short-row kernel: each row's products are computed four at a time
/// (vector gather + multiply), then folded into the row accumulator **one
/// by one in index order** — the horizontal reduction replays the serial
/// add sequence exactly, so only the gathers and multiplies go wide and
/// the result stays bitwise identical to serial CSR.
///
/// # Safety
/// Contract of [`mul_rows_unchecked`], plus AVX2 must be available
/// (guaranteed by `resolve()`).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn mul_rows_shortrow_avx2(
    m: &CsrMatrix,
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
) {
    use core::arch::x86_64::*;
    let row_ptr = m.row_ptr();
    let col_idx = m.col_idx();
    let values = m.values();
    unsafe {
        let xp = x.as_ptr();
        for (local, i) in range.enumerate() {
            let s = *row_ptr.get_unchecked(i);
            let e = *row_ptr.get_unchecked(i + 1);
            // The row accumulator lives in lane 0 of an xmm register; the
            // in-order horizontal reduction is add_sd + lane shuffles, so
            // no product ever round-trips through memory (stack spills
            // would re-congest the load ports this kernel is bound on).
            let mut acc = _mm_setzero_pd();
            let mut k = s;
            while k + 4 <= e {
                let c = _mm_loadu_si128(col_idx.as_ptr().add(k) as *const __m128i);
                let xv = _mm256_i32gather_pd::<8>(xp, c);
                let v = _mm256_loadu_pd(values.as_ptr().add(k));
                let p = _mm256_mul_pd(v, xv);
                // In-order horizontal reduction (NOT a tree sum): the
                // bitwise-identity contract fixes the add sequence.
                let plo = _mm256_castpd256_pd128(p);
                let phi = _mm256_extractf128_pd::<1>(p);
                acc = _mm_add_sd(acc, plo);
                acc = _mm_add_sd(acc, _mm_unpackhi_pd(plo, plo));
                acc = _mm_add_sd(acc, phi);
                acc = _mm_add_sd(acc, _mm_unpackhi_pd(phi, phi));
                k += 4;
            }
            let mut acc = _mm_cvtsd_f64(acc);
            while k < e {
                acc +=
                    values.get_unchecked(k) * x.get_unchecked(*col_idx.get_unchecked(k) as usize);
                k += 1;
            }
            *out.get_unchecked_mut(local) = acc;
        }
    }
}

/// SSE2 short-row kernel: products two at a time (gathers composed scalar),
/// folded in index order like the AVX2 variant.
///
/// # Safety
/// Contract of [`mul_rows_unchecked`].
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
unsafe fn mul_rows_shortrow_sse2(
    m: &CsrMatrix,
    x: &[f64],
    out: &mut [f64],
    range: std::ops::Range<usize>,
) {
    use core::arch::x86_64::*;
    let row_ptr = m.row_ptr();
    let col_idx = m.col_idx();
    let values = m.values();
    unsafe {
        for (local, i) in range.enumerate() {
            let s = *row_ptr.get_unchecked(i);
            let e = *row_ptr.get_unchecked(i + 1);
            let mut acc = _mm_setzero_pd();
            let mut k = s;
            while k + 2 <= e {
                let xv = gather2(x.as_ptr(), col_idx.as_ptr().add(k));
                let v = _mm_loadu_pd(values.as_ptr().add(k));
                let p = _mm_mul_pd(v, xv);
                // In-order register-only reduction, as in the AVX2 variant.
                acc = _mm_add_sd(acc, p);
                acc = _mm_add_sd(acc, _mm_unpackhi_pd(p, p));
                k += 2;
            }
            let mut acc = _mm_cvtsd_f64(acc);
            while k < e {
                acc +=
                    values.get_unchecked(k) * x.get_unchecked(*col_idx.get_unchecked(k) as usize);
                k += 1;
            }
            *out.get_unchecked_mut(local) = acc;
        }
    }
}

#[derive(Clone, Debug)]
enum KernelData {
    Plain,
    Diag(DiagSplitData),
    Sliced(SlicedData),
}

/// A resolved kernel bound to one matrix's structure: the selected kind plus
/// whatever auxiliary layout it needs, and the execution backend its
/// products run on. Built once per [`ChunkPlan`](crate::ChunkPlan) and
/// reused across millions of products.
#[derive(Clone, Debug)]
pub struct Kernel {
    kind: KernelKind,
    data: KernelData,
    /// Resolved execution backend. Always [`Backend::Scalar`] for the
    /// generic kernel (the bitwise ground truth stays intrinsics-free) and
    /// for diagsplit (its win is the branchless dense-diagonal access, not
    /// lane parallelism); shortrow and sliced honor the request up to what
    /// the CPU supports.
    backend: Backend,
    nrows: usize,
    ncols: usize,
    nnz: usize,
}

impl Kernel {
    /// Resolves `choice` for `m` (analyzing the matrix for `Auto`) and
    /// builds the kernel's layout; `backend` is clamped to the hardware
    /// (see [`crate::simd::resolve`]). Unchecked kernels validate the CSR
    /// column invariant once here. Crate-internal: the only safe way to
    /// use a kernel is through a [`ChunkPlan`](crate::ChunkPlan), whose
    /// content-signature check rejects a same-sparsity different-values
    /// matrix (this type's own guard checks shape/nnz only).
    pub(crate) fn build(m: &CsrMatrix, choice: KernelChoice, backend: BackendChoice) -> Kernel {
        let kind = match choice.forced() {
            Some(kind) => kind,
            None => MatrixProfile::analyze(m).select(),
        };
        let kind = if kind != KernelKind::Generic && !columns_in_range(m) {
            // A matrix violating its own construction invariant never gets
            // an unchecked kernel (defense in depth; unreachable through
            // CooBuilder).
            KernelKind::Generic
        } else {
            kind
        };
        let (kind, data) = match kind {
            KernelKind::Generic | KernelKind::ShortRow => (kind, KernelData::Plain),
            KernelKind::DiagSplit => match DiagSplitData::build(m) {
                Some(d) => (kind, KernelData::Diag(d)),
                None => (KernelKind::Generic, KernelData::Plain),
            },
            KernelKind::Sliced => (kind, KernelData::Sliced(SlicedData::build(m))),
        };
        let backend = match kind {
            KernelKind::Sliced => simd::resolve(backend),
            // Measured policy (repro kernels): the short-row kernel's
            // bitwise contract forces an in-order horizontal reduction, so
            // its vector variant is add-latency bound and *loses* to the
            // scalar loop on the grids this workspace targets — Auto keeps
            // it scalar (exactly how kernel selection encodes measured
            // wins). An explicit request still forces the vector variant.
            KernelKind::ShortRow => match backend {
                BackendChoice::Auto => Backend::Scalar,
                forced => simd::resolve(forced),
            },
            KernelKind::Generic | KernelKind::DiagSplit => Backend::Scalar,
        };
        // The AVX2 gathers consume column indices as *signed* 32-bit lanes
        // (`_mm256_i32gather_pd` sign-extends), so a column index ≥ 2³¹
        // would turn into a negative offset. Unreachable for any matrix
        // this workspace can hold, but the unsafe contract must not depend
        // on that — cap such matrices at SSE2 (whose composed gathers
        // zero-extend through `as usize`).
        let backend = if backend == Backend::Avx2 && m.ncols() > i32::MAX as usize {
            Backend::Sse2
        } else {
            backend
        };
        Kernel {
            kind,
            data,
            backend,
            nrows: m.nrows(),
            ncols: m.ncols(),
            nnz: m.nnz(),
        }
    }

    /// The resolved kind.
    pub(crate) fn kind(&self) -> KernelKind {
        self.kind
    }

    /// The resolved execution backend.
    pub(crate) fn backend(&self) -> Backend {
        self.backend
    }

    /// Whether this kernel embeds a copy of the build matrix's values
    /// (the layout-backed kinds). Layout-free kernels read every value
    /// from the matrix they are handed, so they are correct for *any*
    /// matrix of compatible shape — no content check needed.
    pub(crate) fn embeds_values(&self) -> bool {
        !matches!(self.data, KernelData::Plain)
    }

    /// Heap bytes of the auxiliary layout (zero for the layout-free
    /// kernels), by allocation capacity — what byte-bounded caches holding
    /// a plan should charge on top of the matrix itself.
    pub(crate) fn layout_bytes(&self) -> usize {
        const F: usize = std::mem::size_of::<f64>();
        const U: usize = std::mem::size_of::<u32>();
        const W: usize = std::mem::size_of::<usize>();
        match &self.data {
            KernelData::Plain => 0,
            KernelData::Diag(d) => {
                d.row_ptr.capacity() * W
                    + d.lower.capacity() * U
                    + d.dmask.capacity() * std::mem::size_of::<u64>()
                    + d.cols.capacity() * U
                    + d.vals.capacity() * F
                    + d.diag.capacity() * F
            }
            KernelData::Sliced(s) => {
                s.slice_ptr.capacity() * W
                    + s.min_len.capacity() * U
                    + s.lens.capacity() * U
                    + s.vals.capacity() * F
                    + s.cols.capacity() * U
                    + s.tail_rows.capacity() * U
            }
        }
    }

    /// Computes rows `range` of `y = m·x` into `out` (chunk-local slice).
    ///
    /// # Panics
    /// If `m` does not match the matrix this kernel was built from
    /// (shape/nnz), or the slice lengths disagree with `range`.
    pub(crate) fn mul_rows(
        &self,
        m: &CsrMatrix,
        x: &[f64],
        out: &mut [f64],
        range: std::ops::Range<usize>,
    ) {
        assert!(
            m.nrows() == self.nrows && m.ncols() == self.ncols && m.nnz() == self.nnz,
            "kernel was built for a different matrix"
        );
        assert_eq!(x.len(), self.ncols, "x length mismatch");
        assert!(range.end <= self.nrows, "row range out of bounds");
        assert_eq!(out.len(), range.len(), "output slice mismatch");
        match &self.data {
            KernelData::Plain => match self.kind {
                KernelKind::Generic => mul_rows_generic(m, x, out, range),
                // SAFETY: columns validated in `build`, bounds asserted
                // above; `self.backend` was resolved against the CPU.
                _ => match self.backend {
                    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                    Backend::Avx2 => unsafe { mul_rows_shortrow_avx2(m, x, out, range) },
                    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                    Backend::Sse2 => unsafe { mul_rows_shortrow_sse2(m, x, out, range) },
                    _ => unsafe { mul_rows_unchecked(m, x, out, range) },
                },
            },
            // SAFETY: columns validated in `build`, bounds asserted above.
            KernelData::Diag(d) => unsafe { d.mul_rows(x, out, range) },
            // SAFETY: columns validated in `build`, bounds asserted above;
            // `self.backend` was resolved against the CPU.
            KernelData::Sliced(s) => unsafe { s.mul_rows(m, x, out, range, self.backend) },
        }
    }
}

/// Verifies the CSR construction invariant the unchecked kernels rely on.
fn columns_in_range(m: &CsrMatrix) -> bool {
    let n = m.ncols();
    m.col_idx().iter().all(|&c| (c as usize) < n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CooBuilder;

    fn dense_to_csr(rows: &[Vec<f64>]) -> CsrMatrix {
        let mut b = CooBuilder::new(rows.len(), rows[0].len());
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b.build()
    }

    fn pseudo_random(n: usize, m: usize, seed: u64, fill: f64) -> Vec<Vec<f64>> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        (0..n)
            .map(|_| {
                (0..m)
                    .map(|_| {
                        let v = next();
                        if v.abs() < 0.5 * (1.0 - fill) {
                            0.0
                        } else {
                            v
                        }
                    })
                    .collect()
            })
            .collect()
    }

    const ALL_FORCED: [KernelChoice; 4] = [
        KernelChoice::Generic,
        KernelChoice::ShortRow,
        KernelChoice::DiagSplit,
        KernelChoice::Sliced,
    ];

    /// Forced backend choices; forcing an unavailable one resolves to the
    /// widest supported backend below it, so this list is always safe.
    const ALL_BACKENDS: [BackendChoice; 4] = [
        BackendChoice::Auto,
        BackendChoice::Scalar,
        BackendChoice::Sse2,
        BackendChoice::Avx2,
    ];

    #[test]
    fn every_kernel_is_bitwise_identical_to_serial() {
        for (n, m, seed) in [
            (67usize, 67usize, 1u64),
            (123, 51, 2),
            (51, 123, 3),
            (9, 9, 4),
        ] {
            let a = dense_to_csr(&pseudo_random(n, m, seed, 0.4));
            let x: Vec<f64> = (0..m).map(|j| ((j * 37 + 11) % 23) as f64 - 11.0).collect();
            let mut want = vec![0.0; n];
            a.mul_vec_into(&x, &mut want);
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            for choice in ALL_FORCED {
                for backend in ALL_BACKENDS {
                    let kernel = Kernel::build(&a, choice, backend);
                    // Whole matrix in one chunk, and split into odd chunks.
                    let mut got = vec![1.0; n];
                    kernel.mul_rows(&a, &x, &mut got, 0..n);
                    assert_eq!(bits(&want), bits(&got), "{choice:?}/{backend:?} full");
                    let mut got = vec![1.0; n];
                    let mut start = 0;
                    while start < n {
                        let end = (start + 7).min(n);
                        kernel.mul_rows(&a, &x, &mut got[start..end], start..end);
                        start = end;
                    }
                    assert_eq!(bits(&want), bits(&got), "{choice:?}/{backend:?} chunked");
                }
            }
        }
    }

    /// Padded slice cells must never be accumulated: their `0.0 × x[pad]`
    /// is only harmless for finite `x` — with `x[0] = ∞` (padding repeats
    /// column 0) an ungated pad would turn finite rows into `NaN`. Rows
    /// that legitimately read the infinite entry must still match serial
    /// bit for bit.
    #[test]
    fn non_finite_inputs_stay_bitwise_identical() {
        // Ragged rows around a slice boundary so the sliced layout pads.
        let n = 4 * LANES;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0);
            for d in 1..=(i % 5) {
                b.push(i, (i + d) % n, -0.5 / d as f64);
            }
        }
        let a = b.build();
        let mut x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.3).sin()).collect();
        x[0] = f64::INFINITY;
        x[5] = f64::NAN;
        let mut want = vec![0.0; n];
        a.mul_vec_into(&x, &mut want);
        assert!(
            want.iter().any(|v| v.is_finite()),
            "test needs rows untouched by the non-finite entries"
        );
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        for choice in ALL_FORCED {
            for backend in ALL_BACKENDS {
                let kernel = Kernel::build(&a, choice, backend);
                let mut got = vec![0.0; n];
                kernel.mul_rows(&a, &x, &mut got, 0..n);
                assert_eq!(bits(&want), bits(&got), "{choice:?}/{backend:?}");
            }
        }
    }

    /// Adversarial shapes for the SIMD variants: empty rows, overlong tail
    /// rows (excluded from slices), a row count that is not a multiple of
    /// the lane width, and non-finite input entries — all at once. Every
    /// (kernel, backend) pair must still match serial bit for bit.
    #[test]
    fn adversarial_shapes_stay_bitwise_identical_across_backends() {
        let n = 5 * LANES + 3; // not a multiple of the lane width
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            match i % 7 {
                // Empty rows (no entries at all).
                0 => {}
                // Overlong rows: far above the tail threshold, demoted to
                // row-wise execution inside their slice.
                3 => {
                    for d in 0..n / 2 {
                        b.push(i, (i + d) % n, 0.25 + d as f64 * 1e-3);
                    }
                }
                // Short ragged rows.
                r => {
                    b.push(i, i, 2.0);
                    for d in 1..r {
                        b.push(i, (i + d * 5) % n, -0.125 / d as f64);
                    }
                }
            }
        }
        let a = b.build();
        let mut x: Vec<f64> = (0..n).map(|j| ((j * 29 + 7) % 13) as f64 - 6.0).collect();
        x[0] = f64::NEG_INFINITY;
        x[1] = f64::NAN;
        x[n - 1] = -0.0;
        let mut want = vec![0.0; n];
        a.mul_vec_into(&x, &mut want);
        let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        for choice in ALL_FORCED {
            for backend in ALL_BACKENDS {
                let kernel = Kernel::build(&a, choice, backend);
                let mut got = vec![0.0; n];
                kernel.mul_rows(&a, &x, &mut got, 0..n);
                assert_eq!(bits(&want), bits(&got), "{choice:?}/{backend:?} full");
                // Chunk boundaries that slice through slices.
                let mut got = vec![0.0; n];
                for (lo, hi) in [(0usize, 5usize), (5, LANES + 1), (LANES + 1, n)] {
                    kernel.mul_rows(&a, &x, &mut got[lo..hi], lo..hi);
                }
                assert_eq!(bits(&want), bits(&got), "{choice:?}/{backend:?} chunked");
            }
        }
    }

    /// Backend resolution policy: generic and diagsplit always run scalar;
    /// shortrow/sliced honor the request up to the hardware ceiling.
    #[test]
    fn backend_resolution_respects_kind_and_hardware() {
        let m = dense_to_csr(&pseudo_random(48, 48, 11, 0.4));
        for backend in ALL_BACKENDS {
            assert_eq!(
                Kernel::build(&m, KernelChoice::Generic, backend).backend(),
                Backend::Scalar,
                "generic is the scalar ground truth"
            );
            assert_eq!(
                Kernel::build(&m, KernelChoice::DiagSplit, backend).backend(),
                Backend::Scalar,
                "diagsplit is branchless scalar"
            );
        }
        for choice in [KernelChoice::ShortRow, KernelChoice::Sliced] {
            assert_eq!(
                Kernel::build(&m, choice, BackendChoice::Scalar).backend(),
                Backend::Scalar
            );
            assert!(
                Kernel::build(&m, choice, BackendChoice::Avx2).backend() <= simd::detected(),
                "forced backends must be clamped to the hardware"
            );
        }
        // Auto: sliced takes the widest backend; shortrow stays scalar
        // (its in-order reduction is latency-bound — a measured policy).
        assert_eq!(
            Kernel::build(&m, KernelChoice::Sliced, BackendChoice::Auto).backend(),
            simd::detected()
        );
        assert_eq!(
            Kernel::build(&m, KernelChoice::ShortRow, BackendChoice::Auto).backend(),
            Backend::Scalar
        );
    }

    #[test]
    fn profile_reports_structure() {
        // Tridiagonal: full diagonal, bandwidth 1, uniform short rows.
        let n = 64;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 2.0);
            if i > 0 {
                b.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
            }
        }
        let p = MatrixProfile::analyze(&b.build());
        assert_eq!(p.bandwidth, 1);
        assert_eq!(p.max_row_len, 3);
        assert!((p.diag_density - 1.0).abs() < 1e-12);
        assert_eq!(p.short_row_frac, 1.0);
        assert!(p.sliced_fill > 0.8, "{}", p.sliced_fill);
    }

    #[test]
    fn selection_is_deterministic_and_structure_driven() {
        // Too small => generic regardless of shape.
        let small = dense_to_csr(&pseudo_random(20, 20, 5, 0.5));
        assert_eq!(MatrixProfile::analyze(&small).select(), KernelKind::Generic);
        assert_eq!(
            Kernel::build(&small, KernelChoice::Auto, BackendChoice::Auto).kind(),
            KernelKind::Generic
        );
        // Large with uniformly short rows => shortrow, stable across
        // rebuilds (the RAID-generator shape).
        let n = 1200;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 1.0);
            for d in 1..4 {
                b.push(i, (i + d * 7) % n, 0.1);
            }
        }
        let m = b.build();
        let first = Kernel::build(&m, KernelChoice::Auto, BackendChoice::Auto).kind();
        assert_eq!(first, KernelKind::ShortRow);
        for _ in 0..3 {
            assert_eq!(
                Kernel::build(&m, KernelChoice::Auto, BackendChoice::Auto).kind(),
                first
            );
        }
        // Long ragged rows with a dense diagonal => diagsplit: row lengths
        // alternate far beyond the short-row bound and pad too much for the
        // sliced layout.
        let n = 512;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, 1.0);
            let len = if i % 2 == 0 { 20 } else { 90 };
            for d in 1..len {
                b.push(i, (i + d) % n, 0.1);
            }
        }
        let m = b.build();
        let p = MatrixProfile::analyze(&m);
        assert_eq!(p.select(), KernelKind::DiagSplit, "{p:?}");
        // Long uniform rows (no padding waste) => sliced.
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            for d in 0..40 {
                b.push(i, (i + d * 3 + 1) % n, 0.1);
            }
        }
        let m = b.build();
        let p = MatrixProfile::analyze(&m);
        assert_eq!(p.select(), KernelKind::Sliced, "{p:?}");
    }

    #[test]
    fn forced_kernels_resolve_as_requested() {
        let m = dense_to_csr(&pseudo_random(40, 40, 9, 0.4));
        for choice in ALL_FORCED {
            assert_eq!(
                Kernel::build(&m, choice, BackendChoice::Auto).kind(),
                choice.forced().unwrap()
            );
        }
        assert!(KernelChoice::parse("DiagSplit").is_ok());
        assert!(KernelChoice::parse("warp").is_err());
    }

    #[test]
    #[should_panic(expected = "different matrix")]
    fn kernel_rejects_a_different_matrix() {
        let a = dense_to_csr(&pseudo_random(30, 30, 6, 0.4));
        let b = dense_to_csr(&pseudo_random(31, 31, 7, 0.4));
        let kernel = Kernel::build(&a, KernelChoice::ShortRow, BackendChoice::Auto);
        let mut out = vec![0.0; 31];
        kernel.mul_rows(&b, &vec![1.0; 31], &mut out, 0..31);
    }
}
