//! A persistent worker pool with work-stealing for repeated data-parallel
//! kernels.
//!
//! The randomization solvers are SpMV-bound: a single `UR(10⁵ h)` run
//! performs millions of products over the same matrix. Spawning scoped
//! threads *per product* (the original `mul_vec_parallel_into` strategy,
//! kept as [`CsrMatrix::mul_vec_spawn_into`](crate::CsrMatrix::mul_vec_spawn_into)
//! for comparison) pays thread-creation cost on every step. The
//! [`WorkerPool`] here parks its workers between products instead, so a warm
//! pool serves a step for the cost of a condvar wake.
//!
//! ## Job slots and the epoch-validated claim protocol
//!
//! The pool owns a small fixed array of **job slots**, recycled across runs
//! — publishing a job allocates nothing (the original design allocated an
//! `Arc<JobState>` per run). A run pops a free slot, writes the job's erased
//! closure pointer, trampoline, and chunk count into it under a seqlock
//! (`seq` odd while writing, even = `2·epoch` when stable), and finally
//! publishes the slot's **claim word** — `epoch ≪ 24 | next-chunk-index` —
//! which workers `fetch_add` to claim chunk indices.
//!
//! A claim's epoch bits tell the claimer which job it claimed from. After
//! claiming, the worker re-reads the slot fields and validates them against
//! the claimed epoch through the seqlock; the two cases are:
//!
//! * **valid claim** (`index < n_chunks` of the claimed epoch): the slot
//!   cannot be republished while this claim is unexecuted — completion
//!   requires every real chunk's `remaining` decrement, and a claimed index
//!   is decremented only by its unique claimer — so the validation is
//!   guaranteed to succeed and the worker executes the chunk;
//! * **overshoot claim** (`index ≥ n_chunks`, including claims that raced a
//!   republish): validation fails or the index check fails, and the worker
//!   walks away — overshoot indices are never part of the completion count.
//!
//! Completion is a single atomic countdown whose last decrement wakes the
//! submitter; the submitter always participates in claiming its own job, so
//! progress never depends on a worker being free.
//!
//! ## Work stealing (no all-or-nothing nesting budget)
//!
//! Multiple jobs can be in flight at once: each occupies its own slot, and
//! idle workers scan **all** slots for claimable chunks. When an engine
//! sweep runs its jobs on the pool and a sweep job performs its own pooled
//! SpMVs, those inner products publish into free slots and any idle worker
//! steals their chunks — the submitting job always drains its own slot, so
//! the worst case (every worker busy) degrades to the old inline execution,
//! and the former cliff between "sweep owns the pool, every inner SpMV is
//! serial" and "pool free, one SpMV at a time parallelizes" is gone.
//! [`WorkerPoolStats::stolen_chunks`] counts worker-executed chunks of runs
//! that overlapped another run — the new concurrency this buys.
//!
//! Results are bitwise identical no matter which thread claims which chunk
//! (each output row is reduced serially by exactly one claimer).

use std::any::Any;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Poison-tolerant lock: a panic on another thread must not wedge the
/// protected state for the rest of the process. Shared by the pool, the
/// chunk-plan memo in `regenr-ctmc`, and the engine's artifact cache —
/// one copy, one poison policy.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Claim-word layout: low bits index chunks, high bits tag the epoch.
const IDX_BITS: u32 = 24;
const IDX_MASK: u64 = (1 << IDX_BITS) - 1;
/// Half the index range is headroom for overshoot claims (bounded by the
/// number of threads that can race one exhausted job).
const MAX_CHUNKS: usize = (IDX_MASK as usize) / 2;
const EPOCH_MASK: u64 = u64::MAX >> IDX_BITS;

#[inline]
fn unpack(claim: u64) -> (u64, usize) {
    (claim >> IDX_BITS, (claim & IDX_MASK) as usize)
}

/// One recyclable job slot. Field validity is governed by the seqlock
/// protocol described in the module docs; all fields are atomics so stale
/// readers racing a republish read *stale values*, never tear.
struct JobSlot {
    /// Seqlock word: odd while a publish is writing fields, `2·epoch` when
    /// the fields describe that epoch's job.
    seq: AtomicU64,
    /// `epoch ≪ IDX_BITS | next chunk index` — `fetch_add(1)` claims.
    claim: AtomicU64,
    /// Chunk count of the current epoch (`0` once retired — the cheap
    /// "nothing to claim" hint).
    n_chunks: AtomicUsize,
    /// Erased pointer to the submitter's closure (`&F`), valid while the
    /// epoch's run is in flight (`run` does not return before `remaining`
    /// hits zero).
    data: AtomicPtr<()>,
    /// Monomorphized trampoline casting `data` back to `&F`.
    call: AtomicPtr<()>,
    /// Real (index `< n_chunks`) chunks not yet completed; the last
    /// decrement wakes the submitter.
    remaining: AtomicUsize,
    /// Whether another run was already in flight when this one published —
    /// worker-executed chunks of such runs are the "stolen" ones.
    overlapped: AtomicBool,
    /// First panic payload raised by a worker-executed chunk; the submitter
    /// re-raises it after the run drains (a worker must survive a panicking
    /// chunk — dying mid-job would starve every later run — but the
    /// original payload must not be lost on the way).
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl JobSlot {
    fn new() -> JobSlot {
        JobSlot {
            seq: AtomicU64::new(0),
            claim: AtomicU64::new(0),
            n_chunks: AtomicUsize::new(0),
            data: AtomicPtr::new(std::ptr::null_mut()),
            call: AtomicPtr::new(std::ptr::null_mut()),
            remaining: AtomicUsize::new(0),
            overlapped: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
        }
    }
}

struct Control {
    /// Bumped once per published job; sleeping workers wait for a change.
    generation: u64,
    /// Indices of slots with no job in flight (capacity never grows, so
    /// push/pop never allocate).
    free_slots: Vec<usize>,
    /// Jobs currently in flight (for the `overlapped` tag).
    active_jobs: usize,
    shutdown: bool,
}

struct Inner {
    control: Mutex<Control>,
    /// Workers park here waiting for a new generation.
    work: Condvar,
    /// Submitters park here waiting for `remaining == 0`.
    done: Condvar,
    slots: Box<[JobSlot]>,
    // Cumulative counters (see `WorkerPoolStats`).
    pooled_runs: AtomicU64,
    inline_runs: AtomicU64,
    chunks: AtomicU64,
    stolen_chunks: AtomicU64,
    overlapped_runs: AtomicU64,
}

/// Cumulative pool counters (process lifetime for the global pool). Snapshot
/// with [`WorkerPool::stats`]; report deltas across a region of interest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerPoolStats {
    /// Runs published to a job slot (the submitter still participates).
    pub pooled_runs: u64,
    /// Runs that executed entirely inline on the calling thread (single
    /// chunk, single-thread pool, or no free slot).
    pub inline_runs: u64,
    /// Chunks executed across all pooled runs (including the submitter's).
    pub chunks: u64,
    /// Chunks of overlapped runs executed by pool workers — SpMV chunks
    /// idle workers stole while a sweep (or another product) was in flight.
    pub stolen_chunks: u64,
    /// Runs published while at least one other run was already in flight
    /// (nested submissions from inside pool jobs, or concurrent
    /// submitters) — the runs whose chunks count as stealable.
    pub overlapped_runs: u64,
}

impl WorkerPoolStats {
    /// Counter-wise difference (`self - earlier`), for reporting the cost of
    /// one region against a shared pool.
    pub fn since(&self, earlier: &WorkerPoolStats) -> WorkerPoolStats {
        WorkerPoolStats {
            pooled_runs: self.pooled_runs - earlier.pooled_runs,
            inline_runs: self.inline_runs - earlier.inline_runs,
            chunks: self.chunks - earlier.chunks,
            stolen_chunks: self.stolen_chunks - earlier.stolen_chunks,
            overlapped_runs: self.overlapped_runs - earlier.overlapped_runs,
        }
    }
}

/// A persistent pool of parked worker threads executing indexed chunks,
/// with multi-job work stealing (see the module docs).
pub struct WorkerPool {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// A pool executing on `threads` threads total: `threads - 1` parked
    /// workers plus the submitting thread, which always participates.
    pub fn new(threads: usize) -> Arc<WorkerPool> {
        let threads = threads.max(1);
        // Enough slots for a sweep plus one nested SpMV per executing
        // thread, with headroom; a full table falls back to inline runs.
        let n_slots = 2 * threads + 2;
        let inner = Arc::new(Inner {
            control: Mutex::new(Control {
                generation: 0,
                free_slots: (0..n_slots).rev().collect(),
                active_jobs: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            slots: (0..n_slots).map(|_| JobSlot::new()).collect(),
            pooled_runs: AtomicU64::new(0),
            inline_runs: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            stolen_chunks: AtomicU64::new(0),
            overlapped_runs: AtomicU64::new(0),
        });
        let workers = (1..threads)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("regenr-pool-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning a pool worker")
            })
            .collect();
        Arc::new(WorkerPool {
            inner,
            workers,
            threads,
        })
    }

    /// The process-wide shared pool, sized to the machine's available
    /// parallelism on first use. This is the pool the pooled SpMV kernels
    /// and the engine's sweep executor share (see the module docs).
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(crate::parallel::effective_threads(0)))
    }

    /// Total threads the pool executes on (workers + submitter).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WorkerPoolStats {
        WorkerPoolStats {
            pooled_runs: self.inner.pooled_runs.load(Ordering::Relaxed),
            inline_runs: self.inner.inline_runs.load(Ordering::Relaxed),
            chunks: self.inner.chunks.load(Ordering::Relaxed),
            stolen_chunks: self.inner.stolen_chunks.load(Ordering::Relaxed),
            overlapped_runs: self.inner.overlapped_runs.load(Ordering::Relaxed),
        }
    }

    /// Executes `f(0), …, f(n_chunks - 1)` across the pool and the calling
    /// thread; returns when every chunk has completed. The return value is
    /// `true` when the chunks were published for the pool's workers and
    /// `false` when they all ran inline on the caller — callers reporting
    /// achieved concurrency (the engine's `ExecStats`) need the
    /// distinction; kernels can ignore it.
    ///
    /// Chunk *assignment* is first-come-first-served (non-deterministic),
    /// so `f` must produce results independent of which thread runs which
    /// chunk — the pooled SpMV writes disjoint output slices, for example.
    /// Nested submission (a pool job performing its own `run`) is fine and
    /// never deadlocks: the nested job occupies its own slot, idle workers
    /// steal its chunks, and the nested submitter drains whatever nobody
    /// steals. Single-chunk jobs, single-thread pools, and a full slot
    /// table run inline on the caller — same results, no parallelism.
    pub fn run<F: Fn(usize) + Sync>(&self, n_chunks: usize, f: F) -> bool {
        regenr_failpoint::failpoint!("pool-publish");
        if n_chunks == 0 {
            return false;
        }
        if n_chunks == 1 || self.threads == 1 || n_chunks > MAX_CHUNKS {
            self.inner.inline_runs.fetch_add(1, Ordering::Relaxed);
            for i in 0..n_chunks {
                // Armed on the inline path too: a chunk "panic" here unwinds
                // straight to the supervisor, so single-core machines can
                // still exercise the chunk-death recovery story.
                regenr_failpoint::failpoint!("pool-chunk");
                f(i);
            }
            return false;
        }

        unsafe fn trampoline<F: Fn(usize)>(data: *const (), chunk: usize) {
            // SAFETY: `data` is the `&F` published by `run`, which blocks
            // until every real chunk completed; see the module docs.
            unsafe { (*data.cast::<F>())(chunk) }
        }

        // Acquire a slot and publish the job under the control lock (the
        // lock also orders the generation bump against sleeping workers).
        let (slot_idx, epoch, overlapped) = {
            let mut control = lock(&self.inner.control);
            let Some(slot_idx) = control.free_slots.pop() else {
                drop(control);
                self.inner.inline_runs.fetch_add(1, Ordering::Relaxed);
                for i in 0..n_chunks {
                    f(i);
                }
                return false;
            };
            let overlapped = control.active_jobs > 0;
            control.active_jobs += 1;
            let slot = &self.inner.slots[slot_idx];
            // Seqlock write: odd marks the fields unstable, the final even
            // store (2·epoch, Release) republishes them.
            let seq = slot.seq.load(Ordering::Relaxed);
            debug_assert_eq!(seq & 1, 0, "slot republished while in flight");
            slot.seq.store(seq + 1, Ordering::Relaxed);
            fence(Ordering::Release);
            slot.n_chunks.store(n_chunks, Ordering::Relaxed);
            slot.data
                .store((&raw const f).cast::<()>().cast_mut(), Ordering::Relaxed);
            slot.call.store(
                trampoline::<F> as unsafe fn(*const (), usize) as *mut (),
                Ordering::Relaxed,
            );
            slot.remaining.store(n_chunks, Ordering::Relaxed);
            slot.overlapped.store(overlapped, Ordering::Relaxed);
            let epoch = (seq + 2) >> 1;
            slot.seq.store(seq + 2, Ordering::Release);
            // The claim word goes live last: a worker that wins a claim is
            // guaranteed (via this Release / its Acquire fetch_add) to see
            // the epoch's fields.
            slot.claim
                .store((epoch & EPOCH_MASK) << IDX_BITS, Ordering::Release);
            control.generation += 1;
            self.inner.work.notify_all();
            (slot_idx, epoch & EPOCH_MASK, overlapped)
        };
        let slot = &self.inner.slots[slot_idx];

        // Even if a submitter-side chunk panics, the closure must stay
        // alive until no worker can still be executing a chunk: the guard
        // skips every unclaimed chunk and waits out the in-flight ones
        // before `f` is dropped by the unwind. The guard also extracts any
        // worker panic payload *before* the slot returns to the free list —
        // after that instant the slot (and its payload mutex) belongs to
        // the next run.
        let mut payload = None;
        let mut drain = DrainGuard {
            inner: &self.inner,
            slot_idx,
            n_chunks,
            mid_chunk: false,
            payload: &mut payload,
        };
        loop {
            let (e, idx) = unpack(slot.claim.fetch_add(1, Ordering::AcqRel));
            // Only this thread can republish this slot, so its epoch is
            // stable for the whole run.
            debug_assert_eq!(e, epoch);
            if idx >= n_chunks {
                break;
            }
            drain.mid_chunk = true;
            regenr_failpoint::failpoint!("pool-chunk");
            f(idx);
            drain.mid_chunk = false;
            slot.remaining.fetch_sub(1, Ordering::AcqRel);
        }
        drop(drain);
        self.inner.pooled_runs.fetch_add(1, Ordering::Relaxed);
        self.inner
            .chunks
            .fetch_add(n_chunks as u64, Ordering::Relaxed);
        if overlapped {
            self.inner.overlapped_runs.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(payload) = payload {
            // Re-raise the original payload so callers (and their
            // catch_unwind error reporting) see the real panic message.
            std::panic::resume_unwind(payload);
        }
        true
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut control = lock(&self.inner.control);
            control.shutdown = true;
            self.inner.work.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Completion barrier for one run, robust to unwinding: on drop (normal
/// exit *or* a panic in a submitter-side chunk) it claims-and-skips every
/// not-yet-claimed chunk, accounts a chunk the submitter panicked inside,
/// waits until no worker is still executing, and only then retires the slot
/// — only after that may the closure be dropped.
struct DrainGuard<'a> {
    inner: &'a Inner,
    slot_idx: usize,
    n_chunks: usize,
    /// True while the submitter is inside `f(i)`: a panic there leaves that
    /// chunk's `remaining` decrement to the guard.
    mid_chunk: bool,
    /// Receives any worker panic payload, extracted before the slot is
    /// handed back (after that it belongs to the next run).
    payload: &'a mut Option<Box<dyn Any + Send>>,
}

impl Drop for DrainGuard<'_> {
    fn drop(&mut self) {
        let slot = &self.inner.slots[self.slot_idx];
        if self.mid_chunk {
            slot.remaining.fetch_sub(1, Ordering::AcqRel);
        }
        // Skip chunks nobody claimed yet (relevant only when unwinding).
        loop {
            let (_, idx) = unpack(slot.claim.fetch_add(1, Ordering::AcqRel));
            if idx >= self.n_chunks {
                break;
            }
            slot.remaining.fetch_sub(1, Ordering::AcqRel);
        }
        // Wait for straggler chunks claimed by workers. `remaining` is
        // re-checked under the control mutex, so the last worker's notify
        // (taken under the same mutex) cannot be lost.
        let mut control = lock(&self.inner.control);
        while slot.remaining.load(Ordering::Acquire) > 0 {
            control = self
                .inner
                .done
                .wait(control)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        // Retire the slot: zero the claimable hint, extract this run's
        // panic payload (all payload writes happened before the last
        // `remaining` decrement), and hand the slot back. The seqlock stays
        // at this epoch's even value until the next publish, so a
        // straggling overshoot claimer still validates (and skips).
        slot.n_chunks.store(0, Ordering::Relaxed);
        *self.payload = lock(&slot.panic_payload).take();
        control.active_jobs -= 1;
        control.free_slots.push(self.slot_idx);
    }
}

/// Attempts to claim and execute one chunk from `slot`. Returns `true` when
/// a chunk was executed (more may remain), `false` when the slot has
/// nothing claimable for this worker.
fn try_execute_one(inner: &Inner, slot: &JobSlot) -> bool {
    // Cheap peek before committing a fetch_add: a retired or exhausted
    // slot is skipped without an RMW. Racy by design — a stale positive
    // costs one overshoot claim, which the validation below absorbs.
    let (_, idx_hint) = unpack(slot.claim.load(Ordering::Relaxed));
    if idx_hint >= slot.n_chunks.load(Ordering::Relaxed) {
        return false;
    }
    let (epoch, idx) = unpack(slot.claim.fetch_add(1, Ordering::AcqRel));
    // Seqlock read: fields belong to the claimed epoch iff the lock is
    // stable at `2·epoch` around the reads. For a valid claim this cannot
    // fail (the slot cannot be republished while a real chunk is claimed
    // but unexecuted — see the module docs); for overshoot claims any
    // failure path is a safe skip.
    let s1 = slot.seq.load(Ordering::Acquire);
    if s1 & 1 != 0 || (s1 >> 1) & EPOCH_MASK != epoch {
        return false;
    }
    let n_chunks = slot.n_chunks.load(Ordering::Relaxed);
    let data = slot.data.load(Ordering::Relaxed);
    let call = slot.call.load(Ordering::Relaxed);
    let overlapped = slot.overlapped.load(Ordering::Relaxed);
    fence(Ordering::Acquire);
    if slot.seq.load(Ordering::Relaxed) != s1 {
        return false;
    }
    if idx >= n_chunks {
        return false;
    }
    // SAFETY: the seqlock validated (data, call) as the claimed epoch's
    // fields, and a valid claim keeps the closure alive until this chunk's
    // `remaining` decrement (the submitter cannot return before it).
    let call: unsafe fn(*const (), usize) = unsafe { std::mem::transmute(call) };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        regenr_failpoint::failpoint!("pool-chunk");
        unsafe { call(data, idx) }
    }));
    if let Err(payload) = outcome {
        // A panicking chunk must not kill the worker (later runs would be
        // starved): keep the payload for the submitter to re-raise.
        let mut first = lock(&slot.panic_payload);
        if first.is_none() {
            *first = Some(payload);
        }
    }
    if overlapped {
        inner.stolen_chunks.fetch_add(1, Ordering::Relaxed);
    }
    if slot.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        // Last chunk: wake the submitter. Taking the control mutex orders
        // this notify against the submitter's wait.
        let _control = lock(&inner.control);
        inner.done.notify_all();
    }
    true
}

fn worker_loop(inner: &Inner) {
    let mut generation_seen = 0u64;
    loop {
        {
            let mut control = lock(&inner.control);
            loop {
                if control.shutdown {
                    return;
                }
                if control.generation != generation_seen {
                    generation_seen = control.generation;
                    break;
                }
                control = inner
                    .work
                    .wait(control)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        // Scan every slot until a full pass finds nothing claimable, then
        // go back to sleep (re-checking the generation first, so a publish
        // during the scan is never missed).
        loop {
            let mut executed = false;
            for slot in inner.slots.iter() {
                while try_execute_one(inner, slot) {
                    executed = true;
                }
            }
            if !executed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_chunk_exactly_once() {
        let pool = WorkerPool::new(4);
        for n in [1usize, 2, 3, 7, 64, 1000] {
            let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            pool.run(n, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "n={n}"
            );
        }
    }

    #[test]
    fn repeated_runs_reuse_the_same_pool() {
        let pool = WorkerPool::new(3);
        let sum = AtomicU64::new(0);
        for _ in 0..500 {
            pool.run(8, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 500 * (0..8).sum::<u64>());
        let stats = pool.stats();
        assert_eq!(stats.pooled_runs + stats.inline_runs, 500);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let sum = AtomicU64::new(0);
        pool.run(16, |i| {
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (1..=16).sum::<u64>());
        assert_eq!(pool.stats().inline_runs, 1);
        assert_eq!(pool.stats().pooled_runs, 0);
    }

    /// Nested submission used to force inline execution (the all-or-nothing
    /// budget); now the nested jobs get their own slots and complete — with
    /// idle workers free to steal their chunks — and never deadlock.
    #[test]
    fn nested_runs_complete_without_deadlock() {
        let pool = WorkerPool::new(4);
        let outer = AtomicU32::new(0);
        let inner_total = AtomicU64::new(0);
        pool.run(4, |_| {
            outer.fetch_add(1, Ordering::Relaxed);
            pool.run(8, |j| {
                inner_total.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 4);
        assert_eq!(inner_total.load(Ordering::Relaxed), 4 * (0..8).sum::<u64>());
        let stats = pool.stats();
        assert_eq!(stats.pooled_runs + stats.inline_runs, 5);
        assert!(
            stats.overlapped_runs >= 1,
            "nested submissions must be tagged overlapped: {stats:?}"
        );
    }

    /// Forces a steal deterministically: an inner job's chunk 0 spins until
    /// its chunk 1 completes, and the inner submitter can only execute one
    /// of them — so completion *requires* another thread to claim the other
    /// chunk from the published slot.
    #[test]
    fn idle_workers_steal_nested_chunks() {
        let pool = WorkerPool::new(3);
        let before = pool.stats();
        let released = AtomicBool::new(false);
        pool.run(2, |outer_chunk| {
            if outer_chunk == 0 {
                pool.run(2, |inner_chunk| {
                    if inner_chunk == 0 {
                        let t0 = std::time::Instant::now();
                        while !released.load(Ordering::Acquire) {
                            assert!(
                                t0.elapsed() < std::time::Duration::from_secs(30),
                                "no worker stole the releasing chunk"
                            );
                            std::thread::yield_now();
                        }
                    } else {
                        released.store(true, Ordering::Release);
                    }
                });
            }
        });
        let delta = pool.stats().since(&before);
        assert!(released.load(Ordering::Acquire));
        assert!(
            delta.stolen_chunks >= 1,
            "the inner job's second chunk must have been stolen: {delta:?}"
        );
        assert!(delta.overlapped_runs >= 1);
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        let pool = WorkerPool::new(4);
        let total = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let pool = &pool;
                let total = &total;
                scope.spawn(move || {
                    for _ in 0..50 {
                        pool.run(5, |i| {
                            total.fetch_add(i as u64 + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 6 * 50 * (1..=5).sum::<u64>());
    }

    #[test]
    fn panicking_chunk_neither_deadlocks_nor_kills_the_pool() {
        let pool = WorkerPool::new(4);
        for round in 0..3 {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(8, |i| {
                    if i == 3 {
                        panic!("chunk bomb");
                    }
                });
            }));
            let payload = result.expect_err("round {round}: panic must propagate");
            // The original payload survives whether the chunk ran on the
            // submitter or on a worker.
            assert_eq!(
                payload.downcast_ref::<&str>(),
                Some(&"chunk bomb"),
                "round {round}: payload must be preserved"
            );
            // The pool stays fully functional afterwards.
            let sum = AtomicU64::new(0);
            pool.run(8, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), (0..8).sum::<u64>());
        }
    }

    /// Slots are recycled across epochs: far more runs than slots, with
    /// stale workers around, must neither mix jobs up nor lose chunks.
    #[test]
    fn slot_recycling_survives_many_epochs() {
        let pool = WorkerPool::new(4);
        for round in 0..2_000u64 {
            let sum = AtomicU64::new(0);
            pool.run(3, |i| {
                sum.fetch_add(round * 100 + i as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 3 * round * 100 + 3);
        }
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(Arc::ptr_eq(a, b));
        assert!(a.threads() >= 1);
    }

    #[test]
    fn stats_delta() {
        let pool = WorkerPool::new(2);
        let before = pool.stats();
        pool.run(4, |_| {});
        pool.run(4, |_| {});
        let delta = pool.stats().since(&before);
        assert_eq!(delta.pooled_runs + delta.inline_runs, 2);
    }
}
