//! A persistent worker pool for repeated data-parallel kernels.
//!
//! The randomization solvers are SpMV-bound: a single `UR(10⁵ h)` run
//! performs millions of products over the same matrix. Spawning scoped
//! threads *per product* (the original `mul_vec_parallel_into` strategy,
//! kept as [`CsrMatrix::mul_vec_spawn_into`](crate::CsrMatrix::mul_vec_spawn_into)
//! for comparison) pays thread-creation cost on every step. The
//! [`WorkerPool`] here parks its workers between products instead, so a warm
//! pool serves a step for the cost of a condvar wake.
//!
//! ## Protocol (barrier-free chunk claiming)
//!
//! A run publishes a job — an erased closure plus a chunk count — under the
//! pool's control mutex and bumps an epoch; parked workers wake, copy an
//! `Arc` to the per-run `JobState`, and then *claim* chunk indices from a
//! shared atomic counter until the counter passes the chunk count. The
//! submitting thread participates in the claiming too, so progress never
//! depends on a worker being free. There is no barrier between chunks and no
//! per-chunk locking: completion is a single atomic countdown whose last
//! decrement wakes the submitter.
//!
//! Each run gets a **fresh** `JobState`: a worker that was descheduled
//! holding a stale job handle can only observe an exhausted claim counter —
//! it can never execute a new job's chunk through an old job's closure.
//! (The per-run `Arc` is a constant-size allocation, amortized to nothing
//! against the ≥ `min_nnz` products it gates.)
//!
//! ## Nesting and sharing (the thread budget)
//!
//! One pool is shared process-wide ([`WorkerPool::global`]) by sweep-level
//! jobs *and* inner SpMVs. Submission is exclusive: while one run is in
//! flight, any other submitter — including a pool worker whose job performs
//! its own pooled products — falls back to executing its chunks **inline**
//! on the calling thread. That is the nested-parallelism budget: when an
//! engine sweep occupies the pool with solver jobs, each job's inner SpMVs
//! degrade to the serial kernel instead of oversubscribing the machine, and
//! when a single solve runs alone it gets the whole pool. Results are
//! bitwise identical either way (each output row is reduced serially).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Poison-tolerant lock: a panic on another thread must not wedge the
/// protected state for the rest of the process. Shared by the pool, the
/// chunk-plan memo in `regenr-ctmc`, and the engine's artifact cache —
/// one copy, one poison policy.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One run's shared state. Workers hold it through an `Arc`, so a stale
/// handle outliving the run is harmless: its claim counter is exhausted.
struct JobState {
    /// Erased pointer to the caller's closure (`&F`), valid for the run's
    /// lifetime — `run` does not return until `remaining` hits zero.
    data: *const (),
    /// Monomorphized trampoline casting `data` back to `&F`.
    call: unsafe fn(*const (), usize),
    n_chunks: usize,
    /// Next chunk index to claim.
    next: AtomicUsize,
    /// Chunks not yet completed; the last decrement wakes the submitter.
    remaining: AtomicUsize,
    /// First panic payload raised by a worker-executed chunk; the submitter
    /// re-raises it after the run drains (a worker must survive a panicking
    /// chunk — dying mid-job would deadlock the submitter and starve every
    /// later run — but the original payload must not be lost on the way).
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// The raw closure pointer crosses threads by design; `run` keeps the
// referent alive until every chunk completed (see `remaining`).
unsafe impl Send for JobState {}
unsafe impl Sync for JobState {}

struct Control {
    /// Bumped once per published job; workers wait for a change.
    epoch: u64,
    job: Option<Arc<JobState>>,
    shutdown: bool,
}

struct Inner {
    control: Mutex<Control>,
    /// Workers park here waiting for a new epoch.
    work: Condvar,
    /// The submitter parks here waiting for `remaining == 0`.
    done: Condvar,
}

/// Cumulative pool counters (process lifetime for the global pool). Snapshot
/// with [`WorkerPool::stats`]; report deltas across a region of interest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerPoolStats {
    /// Runs executed on the pool's workers.
    pub pooled_runs: u64,
    /// Runs that found the pool busy (or trivially small) and executed
    /// inline on the calling thread instead.
    pub inline_runs: u64,
    /// Chunks executed across all pooled runs (including the submitter's).
    pub chunks: u64,
}

impl WorkerPoolStats {
    /// Counter-wise difference (`self - earlier`), for reporting the cost of
    /// one region against a shared pool.
    pub fn since(&self, earlier: &WorkerPoolStats) -> WorkerPoolStats {
        WorkerPoolStats {
            pooled_runs: self.pooled_runs - earlier.pooled_runs,
            inline_runs: self.inline_runs - earlier.inline_runs,
            chunks: self.chunks - earlier.chunks,
        }
    }
}

/// A persistent pool of parked worker threads executing indexed chunks.
pub struct WorkerPool {
    inner: Arc<Inner>,
    /// Exclusive submission: `try_lock` failure means "pool busy — run
    /// inline" (see the module docs on nesting).
    submission: Mutex<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
    pooled_runs: AtomicU64,
    inline_runs: AtomicU64,
    chunks: AtomicU64,
}

impl WorkerPool {
    /// A pool executing on `threads` threads total: `threads - 1` parked
    /// workers plus the submitting thread, which always participates.
    pub fn new(threads: usize) -> Arc<WorkerPool> {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            control: Mutex::new(Control {
                epoch: 0,
                job: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("regenr-pool-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning a pool worker")
            })
            .collect();
        Arc::new(WorkerPool {
            inner,
            submission: Mutex::new(()),
            workers,
            threads,
            pooled_runs: AtomicU64::new(0),
            inline_runs: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
        })
    }

    /// The process-wide shared pool, sized to the machine's available
    /// parallelism on first use. This is the pool the pooled SpMV kernels
    /// and the engine's sweep executor share (see the module docs).
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(crate::parallel::effective_threads(0)))
    }

    /// Total threads the pool executes on (workers + submitter).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WorkerPoolStats {
        WorkerPoolStats {
            pooled_runs: self.pooled_runs.load(Ordering::Relaxed),
            inline_runs: self.inline_runs.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
        }
    }

    /// Executes `f(0), …, f(n_chunks - 1)` across the pool and the calling
    /// thread; returns when every chunk has completed. The return value is
    /// `true` when the chunks were published to the pool's workers and
    /// `false` when they all ran inline on the caller — callers reporting
    /// achieved concurrency (the engine's `ExecStats`) need the
    /// distinction; kernels can ignore it.
    ///
    /// Chunk *assignment* is first-come-first-served (non-deterministic),
    /// so `f` must produce results independent of which thread runs which
    /// chunk — the pooled SpMV writes disjoint output slices, for example.
    /// If the pool is busy with another run (nested use), or has no parked
    /// workers, or the job is a single chunk, every chunk runs inline on
    /// the caller — same results, no parallelism.
    pub fn run<F: Fn(usize) + Sync>(&self, n_chunks: usize, f: F) -> bool {
        if n_chunks == 0 {
            return false;
        }
        let guard = if n_chunks > 1 && self.threads > 1 {
            self.submission.try_lock().ok()
        } else {
            None
        };
        let Some(_guard) = guard else {
            self.inline_runs.fetch_add(1, Ordering::Relaxed);
            for i in 0..n_chunks {
                f(i);
            }
            return false;
        };

        unsafe fn trampoline<F: Fn(usize)>(data: *const (), chunk: usize) {
            // SAFETY: `data` is the `&F` published by `run`, which blocks
            // until all chunks completed; see `JobState::data`.
            unsafe { (*data.cast::<F>())(chunk) }
        }
        let job = Arc::new(JobState {
            data: (&raw const f).cast(),
            call: trampoline::<F>,
            n_chunks,
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n_chunks),
            panic_payload: Mutex::new(None),
        });

        {
            let mut control = lock(&self.inner.control);
            control.epoch += 1;
            control.job = Some(job.clone());
            self.inner.work.notify_all();
        }

        // Even if a submitter-side chunk panics, the closure must stay
        // alive until no worker can still be executing a chunk: the guard
        // skips every unclaimed chunk and waits out the in-flight ones
        // before `f` is dropped by the unwind.
        let drain = DrainGuard {
            inner: &self.inner,
            job: &job,
            mid_chunk: false,
        };
        let mut drain = drain;
        loop {
            let i = job.next.fetch_add(1, Ordering::AcqRel);
            if i >= n_chunks {
                break;
            }
            drain.mid_chunk = true;
            f(i);
            drain.mid_chunk = false;
            job.remaining.fetch_sub(1, Ordering::AcqRel);
        }
        drop(drain);
        self.pooled_runs.fetch_add(1, Ordering::Relaxed);
        self.chunks.fetch_add(n_chunks as u64, Ordering::Relaxed);
        if let Some(payload) = lock(&job.panic_payload).take() {
            // Re-raise the original payload so callers (and their
            // catch_unwind error reporting) see the real panic message.
            std::panic::resume_unwind(payload);
        }
        true
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut control = lock(&self.inner.control);
            control.shutdown = true;
            self.inner.work.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Completion barrier for one run, robust to unwinding: on drop (normal
/// exit *or* a panic in a submitter-side chunk) it claims-and-skips every
/// not-yet-claimed chunk, accounts a chunk the submitter panicked inside,
/// and then waits until no worker is still executing — only after that may
/// the closure be dropped.
struct DrainGuard<'a> {
    inner: &'a Inner,
    job: &'a Arc<JobState>,
    /// True while the submitter is inside `f(i)`: a panic there leaves that
    /// chunk's `remaining` decrement to the guard.
    mid_chunk: bool,
}

impl Drop for DrainGuard<'_> {
    fn drop(&mut self) {
        if self.mid_chunk {
            self.job.remaining.fetch_sub(1, Ordering::AcqRel);
        }
        // Skip chunks nobody claimed yet (relevant only when unwinding).
        loop {
            let i = self.job.next.fetch_add(1, Ordering::AcqRel);
            if i >= self.job.n_chunks {
                break;
            }
            self.job.remaining.fetch_sub(1, Ordering::AcqRel);
        }
        // Wait for straggler chunks claimed by workers. `remaining` is
        // re-checked under the control mutex, so the last worker's notify
        // (taken under the same mutex) cannot be lost.
        let mut control = lock(&self.inner.control);
        while self.job.remaining.load(Ordering::Acquire) > 0 {
            control = self
                .inner
                .done
                .wait(control)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        // Drop the job so the closure reference cannot linger in the
        // control slot past this run.
        control.job = None;
    }
}

fn worker_loop(inner: &Inner) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut control = lock(&inner.control);
            loop {
                if control.shutdown {
                    return;
                }
                if control.epoch != seen {
                    seen = control.epoch;
                    if let Some(job) = control.job.clone() {
                        break job;
                    }
                }
                control = inner
                    .work
                    .wait(control)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        loop {
            let i = job.next.fetch_add(1, Ordering::AcqRel);
            if i >= job.n_chunks {
                break;
            }
            // SAFETY: a successful claim means the run has not completed,
            // so the closure behind `data` is still alive. A panicking
            // chunk must not kill the worker (later runs would deadlock
            // waiting for it): keep the payload for the submitter to
            // re-raise.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                (job.call)(job.data, i)
            }));
            if let Err(payload) = outcome {
                let mut slot = lock(&job.panic_payload);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last chunk: wake the submitter. Taking the control mutex
                // orders this notify against the submitter's wait.
                let _control = lock(&inner.control);
                inner.done.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_chunk_exactly_once() {
        let pool = WorkerPool::new(4);
        for n in [1usize, 2, 3, 7, 64, 1000] {
            let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            pool.run(n, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "n={n}"
            );
        }
    }

    #[test]
    fn repeated_runs_reuse_the_same_pool() {
        let pool = WorkerPool::new(3);
        let sum = AtomicU64::new(0);
        for _ in 0..500 {
            pool.run(8, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 500 * (0..8).sum::<u64>());
        let stats = pool.stats();
        assert_eq!(stats.pooled_runs + stats.inline_runs, 500);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let sum = AtomicU64::new(0);
        pool.run(16, |i| {
            sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (1..=16).sum::<u64>());
        assert_eq!(pool.stats().inline_runs, 1);
        assert_eq!(pool.stats().pooled_runs, 0);
    }

    #[test]
    fn nested_runs_fall_back_inline() {
        let pool = WorkerPool::new(4);
        let outer = AtomicU32::new(0);
        let inner_total = AtomicU64::new(0);
        pool.run(4, |_| {
            outer.fetch_add(1, Ordering::Relaxed);
            // A nested submission must not deadlock; it runs inline.
            pool.run(8, |j| {
                inner_total.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 4);
        assert_eq!(inner_total.load(Ordering::Relaxed), 4 * (0..8).sum::<u64>());
        assert!(pool.stats().inline_runs >= 1, "nested runs must inline");
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        let pool = WorkerPool::new(4);
        let total = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..6 {
                let pool = &pool;
                let total = &total;
                scope.spawn(move || {
                    for _ in 0..50 {
                        pool.run(5, |i| {
                            total.fetch_add(i as u64 + 1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 6 * 50 * (1..=5).sum::<u64>());
    }

    #[test]
    fn panicking_chunk_neither_deadlocks_nor_kills_the_pool() {
        let pool = WorkerPool::new(4);
        for round in 0..3 {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(8, |i| {
                    if i == 3 {
                        panic!("chunk bomb");
                    }
                });
            }));
            let payload = result.expect_err("round {round}: panic must propagate");
            // The original payload survives whether the chunk ran on the
            // submitter or on a worker.
            assert_eq!(
                payload.downcast_ref::<&str>(),
                Some(&"chunk bomb"),
                "round {round}: payload must be preserved"
            );
            // The pool stays fully functional afterwards.
            let sum = AtomicU64::new(0);
            pool.run(8, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), (0..8).sum::<u64>());
        }
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = WorkerPool::global();
        let b = WorkerPool::global();
        assert!(Arc::ptr_eq(a, b));
        assert!(a.threads() >= 1);
    }

    #[test]
    fn stats_delta() {
        let pool = WorkerPool::new(2);
        let before = pool.stats();
        pool.run(4, |_| {});
        pool.run(4, |_| {});
        let delta = pool.stats().since(&before);
        assert_eq!(delta.pooled_runs + delta.inline_runs, 2);
    }
}
