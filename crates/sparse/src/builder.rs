//! Coordinate-format accumulation of sparse matrices.

use crate::csr::CsrMatrix;

/// A COO (triplet) accumulator that produces a [`CsrMatrix`].
///
/// Duplicate `(row, col)` entries are *summed* — convenient for transition
/// systems where several high-level events map to the same state pair (e.g.
/// two different RAID failure events leading to the same lumped state).
#[derive(Clone, Debug)]
pub struct CooBuilder {
    nrows: usize,
    ncols: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl CooBuilder {
    /// New empty builder for an `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(nrows < u32::MAX as usize && ncols < u32::MAX as usize);
        CooBuilder {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Like [`CooBuilder::new`] with a capacity hint for the entry vector.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        let mut b = Self::new(nrows, ncols);
        b.entries.reserve(cap);
        b
    }

    /// Enlarges the matrix to `nrows × ncols`. Existing entries are kept;
    /// dimensions never shrink. Streaming state-space exploration uses this
    /// to feed entries before the final state count is known.
    pub fn grow(&mut self, nrows: usize, ncols: usize) {
        assert!(nrows < u32::MAX as usize && ncols < u32::MAX as usize);
        self.nrows = self.nrows.max(nrows);
        self.ncols = self.ncols.max(ncols);
    }

    /// Records `A[i][j] += v`. Zero values are dropped.
    ///
    /// # Panics
    /// If the indices are out of range.
    #[inline]
    pub fn push(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.nrows, "row {i} out of range ({})", self.nrows);
        assert!(j < self.ncols, "col {j} out of range ({})", self.ncols);
        if v != 0.0 {
            self.entries.push((i as u32, j as u32, v));
        }
    }

    /// Number of recorded triplets (before duplicate merging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Finalizes into CSR: sorts by `(row, col)`, merges duplicates.
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|e| (e.0, e.1));
        let mut row_ptr = vec![0usize; self.nrows + 1];
        let mut col_idx: Vec<u32> = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut last: Option<(u32, u32)> = None;
        for (i, j, v) in self.entries {
            if last == Some((i, j)) {
                *values.last_mut().expect("entry exists when last is set") += v;
            } else {
                col_idx.push(j);
                values.push(v);
                row_ptr[i as usize + 1] += 1;
                last = Some((i, j));
            }
        }
        for i in 0..self.nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix::from_parts(self.nrows, self.ncols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        b.push(0, 1, 2.5);
        b.push(1, 0, 4.0);
        let m = b.build();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 3.5);
        assert_eq!(m.get(1, 0), 4.0);
    }

    #[test]
    fn zeros_are_dropped() {
        let mut b = CooBuilder::new(1, 1);
        b.push(0, 0, 0.0);
        assert!(b.is_empty());
        let m = b.build();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let mut b = CooBuilder::new(3, 3);
        b.push(2, 2, 9.0);
        b.push(0, 1, 1.0);
        b.push(1, 0, 5.0);
        b.push(0, 0, 7.0);
        let m = b.build();
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(
            triplets,
            vec![(0, 0, 7.0), (0, 1, 1.0), (1, 0, 5.0), (2, 2, 9.0)]
        );
    }

    #[test]
    fn empty_rows_are_represented() {
        let mut b = CooBuilder::new(4, 4);
        b.push(3, 0, 1.0);
        let m = b.build();
        assert_eq!(m.row(0).count(), 0);
        assert_eq!(m.row(3).count(), 1);
    }

    #[test]
    fn grow_extends_dimensions_monotonically() {
        let mut b = CooBuilder::new(1, 1);
        b.push(0, 0, 1.0);
        b.grow(3, 3);
        b.push(2, 1, 4.0);
        b.grow(2, 2); // never shrinks
        let m = b.build();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(2, 1), 4.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_row_panics() {
        let mut b = CooBuilder::new(2, 2);
        b.push(2, 0, 1.0);
    }

    #[test]
    fn merge_only_within_same_row() {
        // Column 1 appears as the last entry of row 0 and the first of row 1 —
        // these must NOT be merged.
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        b.push(1, 1, 2.0);
        let m = b.build();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 1), 2.0);
    }
}
