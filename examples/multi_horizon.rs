//! Whole-curve computation with shared construction (`solve_many`).
//!
//! ```text
//! cargo run --example multi_horizon --release
//! ```
//!
//! The paper computes the killed-chain parameters separately for each `t`.
//! Because the truncation bound is monotone in `t`, this library can compute
//! them once at the largest horizon and answer every smaller `t` by prefix
//! truncation — turning a 25-point `UA(t)` curve into one construction pass
//! plus 25 cheap inversions. This example measures the speedup on the
//! `G = 20` RAID model and verifies the values are identical to per-`t`
//! solves.

use regenr::core::select_regenerative_state;
use regenr::core::SelectOptions;
use regenr::models::{RaidModel, RaidParams};
use regenr::prelude::*;
use std::time::Instant;

fn main() {
    let built = RaidModel::new(RaidParams::paper(20)).build().unwrap();

    // The auto-selection heuristic recovers the paper's choice (pristine).
    let r = select_regenerative_state(&built.ctmc, SelectOptions::default()).unwrap();
    println!("auto-selected regenerative state: {r} (paper uses the pristine state, index 0)");

    let rrl = RrlSolver::new(
        &built.ctmc,
        r,
        RrlOptions {
            regen: RegenOptions {
                epsilon: 1e-12,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();

    // 25 log-spaced horizons from 1 h to 1e5 h.
    let ts: Vec<f64> = (0..25).map(|i| 10f64.powf(i as f64 * 5.0 / 24.0)).collect();

    let t0 = Instant::now();
    let curve = rrl.solve_many(MeasureKind::Trr, &ts).unwrap();
    let shared = t0.elapsed();

    let t0 = Instant::now();
    let individual: Vec<_> = ts.iter().map(|&t| rrl.trr(t).unwrap()).collect();
    let per_t = t0.elapsed();

    println!("\n{:>12} {:>14} {:>8}", "t (h)", "UA(t)", "K used");
    for ((sol, single), &t) in curve.iter().zip(&individual).zip(&ts) {
        assert!((sol.value - single.value).abs() < 1e-13, "t={t}");
        assert_eq!(sol.construction_steps, single.construction_steps);
        println!(
            "{t:>12.2} {:>14.6e} {:>8}",
            sol.value, sol.construction_steps
        );
    }
    println!(
        "\nshared construction: {shared:.2?}   per-t construction: {per_t:.2?}   speedup ×{:.1}",
        per_t.as_secs_f64() / shared.as_secs_f64()
    );
}
