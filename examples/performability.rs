//! Performability analysis with a non-binary reward structure.
//!
//! ```text
//! cargo run --example performability --release
//! ```
//!
//! A machines-repairman system: 16 machines (λ = 0.02/h each), 2 repairmen
//! (μ = 1/h each); the reward rate of a state is the number of working
//! machines. `TRR(t)` is then the expected computational capacity at time `t`
//! and `MRR(t)` the mean capacity over a mission of length `t` — the paper's
//! two measures on a genuinely performability-flavoured model (rewards are
//! not a failure indicator).

use regenr::models::machines::MachinesModel;
use regenr::prelude::*;
use regenr::transient::stationary_distribution;

fn main() {
    let model = MachinesModel {
        machines: 16,
        repairmen: 2,
        lambda: 0.02,
        mu: 1.0,
    };
    let built = model.build().unwrap();
    println!(
        "machines-repairman model: {} states, r_max = {}",
        built.ctmc.n_states(),
        built.ctmc.max_reward()
    );

    let epsilon = 1e-12;
    let rrl = RrlSolver::new(
        &built.ctmc,
        0,
        RrlOptions {
            regen: RegenOptions {
                epsilon,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let sr = SrSolver::new(
        &built.ctmc,
        SrOptions {
            epsilon,
            ..Default::default()
        },
    );

    println!(
        "\n{:>9} {:>18} {:>18}",
        "t (h)", "capacity TRR(t)", "mean capacity MRR(t)"
    );
    for t in [0.5, 2.0, 10.0, 50.0, 250.0] {
        let trr = rrl.trr(t).unwrap().value;
        let mrr = rrl.mrr(t).unwrap().value;
        // Cross-check against standard randomization.
        assert!((trr - sr.solve(MeasureKind::Trr, t).value).abs() < 1e-9);
        assert!((mrr - sr.solve(MeasureKind::Mrr, t).value).abs() < 1e-9);
        println!("{t:>9.1} {trr:>18.8} {mrr:>18.8}");
    }

    // Long-run capacity from the stationary distribution for reference.
    let pi = stationary_distribution(&built.ctmc, 1e-14, 1_000_000).unwrap();
    let long_run = built.ctmc.reward_dot(&pi);
    println!("\nlong-run expected capacity: {long_run:.8} machines");
    let trr_inf = rrl.trr(10_000.0).unwrap().value;
    assert!((trr_inf - long_run).abs() < 1e-7);
    println!("TRR(10⁴ h) = {trr_inf:.8} — converged to the stationary value.");
}
