//! Point unavailability of the paper's level-5 RAID system (`UA(t)`,
//! Section 3, Table 1 workload).
//!
//! ```text
//! cargo run --example raid_availability --release [G]
//! ```
//!
//! Builds the irreducible RAID model (`A = 0`), solves `UA(t)` over the
//! paper's time grid with RRL and RSD, and prints values, step counts, and
//! the share of RRL time spent in Laplace inversion.

use regenr::models::{RaidModel, RaidParams};
use regenr::prelude::*;

fn main() {
    let g: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    println!("building RAID availability model, G={g} ...");
    let built = RaidModel::new(RaidParams::paper(g)).build().unwrap();
    println!(
        "  {} states, {} generator entries, Λ = {:.4}/h",
        built.ctmc.n_states(),
        built.ctmc.generator().nnz(),
        built.ctmc.generator().max_abs_diag()
    );

    let epsilon = 1e-12;
    let rrl = RrlSolver::new(
        &built.ctmc,
        0,
        RrlOptions {
            regen: RegenOptions {
                epsilon,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let rsd = RsdSolver::new(
        &built.ctmc,
        RsdOptions {
            epsilon,
            ..Default::default()
        },
    );

    println!(
        "\n{:>9} {:>14} {:>9} {:>9} {:>11} {:>10}",
        "t (h)", "UA(t)", "K (RRL)", "RSD steps", "abscissae", "LT share"
    );
    for t in [1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0] {
        let a = rrl.trr(t).unwrap();
        let b = rsd.solve(MeasureKind::Trr, t);
        assert!(
            (a.value - b.value).abs() < 1e-9,
            "RRL and RSD disagree at t={t}: {} vs {}",
            a.value,
            b.value
        );
        let total = a.construction_time + a.inversion_time;
        let share = a.inversion_time.as_secs_f64() / total.as_secs_f64().max(1e-12);
        println!(
            "{t:>9.0} {:>14.6e} {:>9} {:>9} {:>11} {:>9.1}%",
            a.value,
            a.construction_steps,
            b.steps,
            a.abscissae,
            100.0 * share
        );
    }
    println!("\nRRL and RSD agree to <1e-9 at every horizon.");
}
