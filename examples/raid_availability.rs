//! Point unavailability of the paper's level-5 RAID system (`UA(t)`,
//! Section 3, Table 1 workload) — through the solver engine.
//!
//! ```text
//! cargo run --example raid_availability --release [G]
//! ```
//!
//! Builds the irreducible RAID model (`A = 0`) and submits the paper's time
//! grid as one engine request with `Auto` dispatch: the engine runs SR at
//! the small-`Λt` horizons and switches to steady-state detection (RSD) for
//! the large ones — the per-horizon method choice Table 1 implies. A second,
//! fixed-method RRL request cross-checks every value and demonstrates the
//! artifact cache: both requests share one cached uniformization.

use regenr::models::{RaidModel, RaidParams};
use regenr::prelude::*;
use std::sync::Arc;

fn main() {
    let g: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    println!("building RAID availability model, G={g} ...");
    let built = RaidModel::new(RaidParams::paper(g)).build().unwrap();
    println!(
        "  {} states, {} generator entries, Λ = {:.4}/h",
        built.ctmc.n_states(),
        built.ctmc.generator().nnz(),
        built.ctmc.generator().max_abs_diag()
    );
    let model = Arc::new(built.ctmc);

    let t_grid = vec![1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0];
    let engine = Engine::new();
    let auto = SolveRequest::new(format!("raid_g{g}_ua"), model.clone(), t_grid.clone());
    let rrl_check = SolveRequest::new(format!("raid_g{g}_ua_rrl"), model, t_grid.clone())
        .method(MethodChoice::Fixed(Method::Rrl));
    let sweep = engine.sweep(&[auto, rrl_check]);
    assert!(sweep.failures.is_empty(), "{:?}", sweep.failures);

    let (auto_reports, rrl_reports) = sweep.reports.split_at(t_grid.len());
    println!(
        "\n{:>9} {:>14} {:>7} {:>26} {:>8} {:>9}",
        "t (h)", "UA(t)", "method", "dispatch reason", "steps", "K (RRL)"
    );
    for (a, r) in auto_reports.iter().zip(rrl_reports) {
        assert!(
            (a.value - r.value).abs() < 1e-9,
            "Auto and RRL disagree at t={}: {} vs {}",
            a.t,
            a.value,
            r.value
        );
        println!(
            "{:>9.0} {:>14.6e} {:>7} {:>26} {:>8} {:>9}",
            a.t,
            a.value,
            a.method.name(),
            a.reason.as_str(),
            a.steps,
            r.steps
        );
    }

    let cache = sweep.cache;
    println!(
        "\nAuto dispatch and fixed RRL agree to <1e-9 at every horizon; \
         uniformization cache: {} hits / {} misses.",
        cache.uniformized.hits, cache.uniformized.misses
    );
    assert!(
        cache.uniformized.hits > 0,
        "the second request must reuse the cached uniformization"
    );
}
