//! Quickstart: compute transient dependability measures three ways.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! Builds the textbook 2-state repairable unit, computes its point
//! unavailability `UA(t)` with standard randomization (SR), regenerative
//! randomization (RR), and the paper's RRL variant, and checks all three
//! against the closed form.

use regenr::models::two_state;
use regenr::prelude::*;

fn main() {
    // A repairable unit: fails once per 1000 h, repaired in 1 h on average.
    let (lambda, mu) = (1e-3, 1.0);
    let ctmc = two_state::repairable_unit(lambda, mu);

    // All methods target the same error bound (the paper uses 1e-12).
    let epsilon = 1e-12;
    let sr = SrSolver::new(
        &ctmc,
        SrOptions {
            epsilon,
            ..Default::default()
        },
    );
    let rr = RrSolver::new(
        &ctmc,
        0,
        RrOptions {
            regen: RegenOptions {
                epsilon,
                ..Default::default()
            },
        },
    )
    .expect("state 0 is a valid regenerative state");
    let rrl = RrlSolver::new(
        &ctmc,
        0,
        RrlOptions {
            regen: RegenOptions {
                epsilon,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("state 0 is a valid regenerative state");

    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14}",
        "t (h)", "exact", "SR", "RR", "RRL"
    );
    for t in [1.0, 10.0, 100.0, 1000.0, 10_000.0] {
        let exact = two_state::unavailability(lambda, mu, t);
        let v_sr = sr.solve(MeasureKind::Trr, t).value;
        let v_rr = rr.solve(MeasureKind::Trr, t).unwrap().value;
        let v_rrl = rrl.trr(t).unwrap().value;
        println!("{t:>10.0} {exact:>14.6e} {v_sr:>14.6e} {v_rr:>14.6e} {v_rrl:>14.6e}");
        assert!((v_sr - exact).abs() < 1e-10);
        assert!((v_rr - exact).abs() < 1e-10);
        assert!((v_rrl - exact).abs() < 1e-10);
    }

    // The same solvers compute the interval measure MRR(t) = (1/t)∫₀ᵗ UA.
    let t = 1000.0;
    println!(
        "\nMRR({t}) = {:.6e} (exact {:.6e})",
        rrl.mrr(t).unwrap().value,
        two_state::interval_unavailability(lambda, mu, t),
    );
    println!("\nAll three methods agree with the closed form to 1e-10.");
}
