//! Unreliability of the paper's level-5 RAID system (`UR(t)`, Section 3,
//! Table 2 workload): the system-failed state is absorbing (`A = 1`).
//!
//! ```text
//! cargo run --example raid_unreliability --release [G]
//! ```
//!
//! Reproduces the paper's headline scalars: `UR(10⁵ h) = 0.50480` at `G=20`
//! and `0.74750` at `G=40` (with the calibrated `P_R`, see DESIGN.md §4).
//! SR is also run for small `t` to cross-check (it is Θ(Λt), so the paper's
//! large horizons are exactly where it becomes impractical — which RRL
//! demonstrates by solving them in milliseconds).

use regenr::models::{RaidModel, RaidParams};
use regenr::prelude::*;

fn main() {
    let g: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    println!("building RAID unreliability model, G={g} ...");
    let built = RaidModel::new(RaidParams::paper(g).with_absorbing_failure())
        .build()
        .unwrap();
    println!("  {} states", built.ctmc.n_states());

    let epsilon = 1e-12;
    let rrl = RrlSolver::new(
        &built.ctmc,
        0,
        RrlOptions {
            regen: RegenOptions {
                epsilon,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let sr = SrSolver::new(
        &built.ctmc,
        SrOptions {
            epsilon,
            ..Default::default()
        },
    );

    println!(
        "\n{:>9} {:>14} {:>9} {:>12}",
        "t (h)", "UR(t)", "K (RRL)", "SR check"
    );
    for t in [1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0] {
        let a = rrl.trr(t).unwrap();
        let check = if t <= 100.0 {
            let b = sr.solve(MeasureKind::Trr, t);
            assert!((a.value - b.value).abs() < 1e-10, "t={t}");
            format!("{:>12.4e}", b.value)
        } else {
            "   (skipped)".to_string() // SR needs ~Λt ≈ millions of steps here
        };
        println!(
            "{t:>9.0} {:>14.6e} {:>9} {check}",
            a.value, a.construction_steps
        );
    }

    let headline = rrl.trr(1e5).unwrap().value;
    let expected = if g == 20 {
        Some(0.50480)
    } else if g == 40 {
        Some(0.74750)
    } else {
        None
    };
    if let Some(want) = expected {
        println!(
            "\nUR(1e5 h) = {headline:.5} — paper reports {want:.5} (Δ = {:+.1e})",
            headline - want
        );
    } else {
        println!("\nUR(1e5 h) = {headline:.5}");
    }
}
