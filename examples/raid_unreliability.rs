//! Unreliability of the paper's level-5 RAID system (`UR(t)`, Section 3,
//! Table 2 workload): the system-failed state is absorbing (`A = 1`) —
//! through the solver engine.
//!
//! ```text
//! cargo run --example raid_unreliability --release [G]
//! ```
//!
//! Reproduces the paper's headline scalars: `UR(10⁵ h) = 0.50480` at `G=20`
//! and `0.74750` at `G=40` (with the calibrated `P_R`, see DESIGN.md §4).
//! Under `Auto` dispatch the engine uses SR only where it is cheap (small
//! `Λt`) and RRL beyond — exactly the regime split of Table 2, where SR
//! needs millions of steps at `t = 10⁵ h` and RRL a few thousand.

use regenr::models::{RaidModel, RaidParams};
use regenr::prelude::*;
use std::sync::Arc;

fn main() {
    let g: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    println!("building RAID unreliability model, G={g} ...");
    let built = RaidModel::new(RaidParams::paper(g).with_absorbing_failure())
        .build()
        .unwrap();
    println!("  {} states", built.ctmc.n_states());
    let model = Arc::new(built.ctmc);

    let engine = Engine::new();
    let request = SolveRequest::new(
        format!("raid_g{g}_ur"),
        model,
        vec![1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0],
    );
    let reports = engine.solve(&request).unwrap();

    println!(
        "\n{:>9} {:>14} {:>7} {:>26} {:>8}",
        "t (h)", "UR(t)", "method", "dispatch reason", "steps"
    );
    for r in &reports {
        println!(
            "{:>9.0} {:>14.6e} {:>7} {:>26} {:>8}",
            r.t,
            r.value,
            r.method.name(),
            r.reason.as_str(),
            r.steps
        );
    }
    assert_eq!(
        reports.last().unwrap().method,
        Method::Rrl,
        "the large-horizon absorbing cells must dispatch to RRL"
    );

    let headline = reports.last().unwrap().value;
    let expected = if g == 20 {
        Some(0.50480)
    } else if g == 40 {
        Some(0.74750)
    } else {
        None
    };
    if let Some(want) = expected {
        println!(
            "\nUR(1e5 h) = {headline:.5} — paper reports {want:.5} (Δ = {:+.1e})",
            headline - want
        );
    } else {
        println!("\nUR(1e5 h) = {headline:.5}");
    }
}
