//! Side-by-side comparison of every solver in the workspace.
//!
//! ```text
//! cargo run --example method_comparison --release
//! ```
//!
//! Runs SR, RSD, adaptive (active-set) randomization, RR, RRL, and the dense
//! ODE oracle on the duplex-with-coverage model (absorbing failure state,
//! closed-form unreliability) and prints values, step counts, and timings —
//! a miniature of the paper's Section 3 comparison.

use regenr::models::redundant::{duplex_unreliability, duplex_with_coverage};
use regenr::prelude::*;
use regenr::transient::{AdaptiveOptions, AdaptiveSolver, OdeOptions, OdeSolver};
use std::time::Instant;

fn main() {
    let (lambda, mu, coverage) = (0.01, 1.0, 0.95);
    let ctmc = duplex_with_coverage(lambda, mu, coverage);
    let epsilon = 1e-12;

    let sr = SrSolver::new(
        &ctmc,
        SrOptions {
            epsilon,
            ..Default::default()
        },
    );
    let ad = AdaptiveSolver::new(
        &ctmc,
        AdaptiveOptions {
            epsilon,
            ..Default::default()
        },
    );
    let rr = RrSolver::new(
        &ctmc,
        0,
        RrOptions {
            regen: RegenOptions {
                epsilon,
                ..Default::default()
            },
        },
    )
    .unwrap();
    let rrl = RrlSolver::new(
        &ctmc,
        0,
        RrlOptions {
            regen: RegenOptions {
                epsilon,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let ode = OdeSolver::new(&ctmc, OdeOptions::default());

    println!(
        "{:>8} {:>13} | {:>21} {:>21} {:>21} {:>21} {:>13}",
        "t (h)", "exact UR", "SR (val/steps/µs)", "adaptive", "RR", "RRL", "ODE oracle"
    );
    for t in [1.0, 10.0, 100.0, 1000.0] {
        let exact = duplex_unreliability(lambda, mu, coverage, t);

        let t0 = Instant::now();
        let s_sr = sr.solve(MeasureKind::Trr, t);
        let us_sr = t0.elapsed().as_micros();

        let t0 = Instant::now();
        let s_ad = ad.solve(MeasureKind::Trr, t);
        let us_ad = t0.elapsed().as_micros();

        let t0 = Instant::now();
        let s_rr = rr.solve(MeasureKind::Trr, t).unwrap();
        let us_rr = t0.elapsed().as_micros();

        let t0 = Instant::now();
        let s_rrl = rrl.trr(t).unwrap();
        let us_rrl = t0.elapsed().as_micros();

        let s_ode = ode.solve(MeasureKind::Trr, t);

        for (name, v) in [
            ("SR", s_sr.value),
            ("adaptive", s_ad.value),
            ("RR", s_rr.value),
            ("RRL", s_rrl.value),
            ("ODE", s_ode.value),
        ] {
            assert!(
                (v - exact).abs() < 1e-8,
                "{name} deviates at t={t}: {v} vs {exact}"
            );
        }
        println!(
            "{t:>8.0} {exact:>13.6e} | {:>11.4e}/{}/{us_sr:>4} {:>11.4e}/{}/{us_ad:>4} {:>11.4e}/{}/{us_rr:>4} {:>11.4e}/{}/{us_rrl:>4} {:>13.6e}",
            s_sr.value, s_sr.steps,
            s_ad.value, s_ad.steps,
            s_rr.value, s_rr.construction_steps,
            s_rrl.value, s_rrl.construction_steps,
            s_ode.value,
        );
    }
    println!("\nall solvers agree with the closed form to 1e-8.");
    println!("note how RR/RRL step counts saturate while SR grows linearly in t.");
}
