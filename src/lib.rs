//! # regenr — transient analysis of dependability/performability CTMC models
//!
//! A reproduction of *J. A. Carrasco, "Transient Analysis of
//! Dependability/Performability Models by Regenerative Randomization with
//! Laplace Transform Inversion", IPDPS 2000 Workshops (IPPS 2000)*.
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`numeric`] — complex arithmetic, compensated sums, Poisson weights,
//!   Wynn ε-algorithm;
//! * [`sparse`] — CSR sparse matrices and (parallel) vector–matrix products;
//! * [`ctmc`] — CTMC representation, validation, uniformization and a
//!   high-level model compiler;
//! * [`transient`] — baseline solvers: standard randomization (SR),
//!   randomization with steady-state detection (RSD), adaptive uniformization,
//!   dense oracles;
//! * [`laplace`] — Durbin/Crump numerical Laplace inversion with ε-algorithm
//!   acceleration and the paper's damping-parameter selection;
//! * [`core`] — the paper's contribution: regenerative randomization (RR) and
//!   its Laplace-transform-inversion variant (RRL);
//! * [`models`] — the level-5 RAID dependability model of the evaluation
//!   section plus auxiliary models;
//! * [`engine`] — the unified solver engine: one [`Solver`](engine::Solver)
//!   interface over all six methods with capability flags, batch
//!   [`SolveRequest`](engine::SolveRequest)s with `Auto` dispatch (SR for
//!   small `Λt`, RSD for irreducible chains, RRL for stiff/large-horizon
//!   absorbing cases), a fingerprint-keyed artifact cache, parallel sweeps
//!   over `(model × measure × horizon)` grids, and the `regenr` CLI.
//!
//! ## Quickstart
//!
//! ```
//! use regenr::prelude::*;
//!
//! // A 2-state repairable unit: failure rate 1e-3/h, repair rate 1/h.
//! let ctmc = regenr::models::two_state::repairable_unit(1e-3, 1.0);
//! // Unavailability at t = 1000h by the paper's RRL method, error <= 1e-10:
//! let opts = RrlOptions {
//!     regen: RegenOptions { epsilon: 1e-10, ..Default::default() },
//!     ..Default::default()
//! };
//! let sol = RrlSolver::new(&ctmc, 0, opts).unwrap();
//! let ua = sol.trr(1000.0).unwrap();
//! let exact = 1e-3 / (1e-3 + 1.0) * (1.0 - (-(1e-3 + 1.0f64) * 1000.0).exp());
//! assert!((ua.value - exact).abs() < 1e-9);
//! ```
//!
//! ## Engine quickstart — batch sweeps with automatic method choice
//!
//! Hand-picking a solver per workload is exactly what the engine layer
//! removes: submit a request per (model, measure) with a horizon grid, let
//! `Auto` dispatch per horizon, and read structured reports.
//!
//! ```
//! use regenr::prelude::*;
//! use std::sync::Arc;
//!
//! let engine = Engine::new();
//! let unit = Arc::new(regenr::models::two_state::repairable_unit(1e-3, 1.0));
//! let requests = vec![
//!     SolveRequest::new("unit_ua", unit.clone(), vec![1.0, 10.0, 1e4]).epsilon(1e-10),
//!     SolveRequest::new("unit_mrr", unit, vec![1e4])
//!         .measure(MeasureKind::Mrr)
//!         .epsilon(1e-10),
//! ];
//! let sweep = engine.sweep(&requests);
//! assert!(sweep.failures.is_empty());
//! // Small Λt cells ran SR; large-horizon cells of this irreducible chain
//! // ran RSD — and every cell reports which method ran and why.
//! assert_eq!(sweep.reports[0].method, Method::Sr);
//! assert_eq!(sweep.reports[2].method, Method::Rsd);
//! // Artifacts (uniformizations, …) were shared across the batch.
//! assert!(sweep.cache.uniformized.hits > 0);
//! ```

pub use regenr_core as core;
pub use regenr_ctmc as ctmc;
pub use regenr_engine as engine;
pub use regenr_laplace as laplace;
pub use regenr_models as models;
pub use regenr_numeric as numeric;
pub use regenr_sparse as sparse;
pub use regenr_transient as transient;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use regenr_core::{
        select_regenerative_state, RegenOptions, RegenParams, RrOptions, RrSolver, RrlOptions,
        RrlSolver, SelectOptions,
    };
    pub use regenr_ctmc::{Ctmc, CtmcBuilder, ModelSpec, RewardedCtmc};
    pub use regenr_engine::{
        CacheConfig, CacheStats, Engine, EngineOptions, ExecStats, Method, MethodChoice,
        SolveReport, SolveRequest, Solver, SweepReport,
    };
    pub use regenr_laplace::{DurbinInverter, InverterOptions};
    pub use regenr_numeric::{Complex64, PoissonWeights};
    pub use regenr_sparse::{CsrMatrix, WorkerPool, Workspace};
    pub use regenr_transient::{MeasureKind, RsdOptions, RsdSolver, Solution, SrOptions, SrSolver};
}
