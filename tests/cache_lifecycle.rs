//! Cache-lifecycle integration tests (PR 2): bounded pools under a large
//! sweep, the paper grid through a capped cache, and the property that
//! caching is *transparent* — cache-on and cache-off sweeps produce
//! bitwise-identical values.

use proptest::prelude::*;
use regenr::engine::SweepSpec;
use regenr::models::{two_state, RaidModel, RaidParams};
use regenr::prelude::*;
use std::sync::Arc;

/// The acceptance scenario: a 100-request sweep through a capped cache.
/// Pool sizes never exceed the cap, eviction churn actually happens, the
/// warm repeats still hit, the paper's unreliability scalars
/// (`UR(1e5 h) = 0.50480` at `G = 20`, `0.74750` at `G = 40`) reproduce,
/// and the structure analysis runs once per distinct fingerprint.
#[test]
fn bounded_cache_serves_100_requests_and_reproduces_the_paper_grid() {
    let cap = 4;
    let engine =
        Engine::with_cache_config(EngineOptions::default(), CacheConfig::with_max_entries(cap));

    // 8 distinct small fingerprints, each requested 12 times (churn + warm
    // hits), plus the two paper RAID workloads requested twice each.
    let small: Vec<Arc<regenr::ctmc::Ctmc>> = (1..=8)
        .map(|i| Arc::new(two_state::repairable_unit(1e-3 * i as f64, 1.0)))
        .collect();
    let ur20 = Arc::new(
        RaidModel::new(RaidParams::paper(20).with_absorbing_failure())
            .build()
            .unwrap()
            .ctmc,
    );
    let ur40 = Arc::new(
        RaidModel::new(RaidParams::paper(40).with_absorbing_failure())
            .build()
            .unwrap()
            .ctmc,
    );

    let mut reqs: Vec<SolveRequest> = Vec::new();
    for round in 0..12 {
        for (i, model) in small.iter().enumerate() {
            reqs.push(
                SolveRequest::new(
                    format!("small_{i}_r{round}"),
                    model.clone(),
                    vec![1.0, 100.0],
                )
                .epsilon(1e-10),
            );
        }
    }
    for round in 0..2 {
        reqs.push(SolveRequest::new(
            format!("raid_g20_ur_r{round}"),
            ur20.clone(),
            vec![1e5],
        ));
        reqs.push(SolveRequest::new(
            format!("raid_g40_ur_r{round}"),
            ur40.clone(),
            vec![1e5],
        ));
    }
    assert_eq!(reqs.len(), 100);

    // Sweep in chunks and check the caps at every observation point, not
    // just at the end.
    let mut reports = Vec::new();
    for chunk in reqs.chunks(20) {
        let sweep = engine.sweep(chunk);
        assert!(sweep.failures.is_empty(), "{:?}", sweep.failures);
        reports.extend(sweep.reports);
        let stats = engine.cache().stats();
        for (pool, s) in [
            ("structure", stats.structure),
            ("uniformized", stats.uniformized),
            ("regen_params", stats.regen_params),
        ] {
            assert!(
                s.entries <= cap,
                "{pool} pool exceeded the cap: {} > {cap}",
                s.entries
            );
        }
    }
    assert_eq!(reports.len(), 196, "96×2 small cells + 4 RAID cells");

    let stats = engine.cache().stats();
    assert!(
        stats.uniformized.evictions > 0,
        "10 fingerprints through cap {cap} must evict"
    );
    assert!(
        stats.uniformized.hits > 0 && stats.structure.hits > 0,
        "warm repeats must hit: {stats:?}"
    );
    // The artifact graph keys chain facts *structurally*: the eight rate
    // variants of the small unit share one structure entry (served as
    // derived hits), so structure misses count distinct topologies — the
    // small unit, RAID `G = 20`, and RAID `G = 40` — not distinct
    // fingerprints. (The strict once-per-structure analysis invariant
    // lives in `regenr-engine`'s `analysis_once` test, which owns the
    // process-global analyze counter.)
    assert_eq!(stats.structure.misses, 3);
    assert!(
        stats.derived_hits > 0,
        "rate variants must share structure facts: {stats:?}"
    );

    for (name, want) in [("raid_g20_ur", 0.50480), ("raid_g40_ur", 0.74750)] {
        for r in reports.iter().filter(|r| r.model.starts_with(name)) {
            assert!(
                (r.value - want).abs() < 5e-5,
                "{}: UR(1e5) = {} vs paper's {want}",
                r.model,
                r.value
            );
        }
    }
}

/// Strategy: a random small request grid — repairable/non-repairable
/// two-state units with random rates, shared and per-request horizons.
fn arb_grid() -> impl Strategy<Value = Vec<(f64, bool, Vec<f64>, f64)>> {
    prop::collection::vec(
        (
            0.01f64..2.0,
            any::<bool>(),
            prop::collection::vec(0.1f64..5_000.0, 1..4),
            1e-10f64..1e-7,
        ),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..Default::default() })]

    /// Caching must be invisible in the results: the same grid swept with an
    /// unbounded cache and with a disabled cache (`max_entries: 0` retains
    /// nothing) produces bitwise-identical values — reused/widened/sliced
    /// RRL parameters are exact prefixes of what a cold build would compute.
    #[test]
    fn cache_on_and_off_sweeps_are_bitwise_identical(grid in arb_grid()) {
        let reqs: Vec<SolveRequest> = grid
            .iter()
            .enumerate()
            .map(|(i, (lambda, absorbing, horizons, epsilon))| {
                let model = if *absorbing {
                    Arc::new(two_state::non_repairable_unit(*lambda))
                } else {
                    Arc::new(two_state::repairable_unit(*lambda, 1.0))
                };
                SolveRequest::new(format!("m{i}"), model, horizons.clone()).epsilon(*epsilon)
            })
            .collect();
        // threads: 1 pins job order so the cached run reuses/widens entries
        // in a deterministic sequence (parallel-vs-sequential identity is
        // covered separately in the engine's unit tests).
        let opts = EngineOptions { threads: 1, ..Default::default() };
        let on = Engine::with_options(opts);
        let off = Engine::with_cache_config(
            opts,
            CacheConfig { max_entries: Some(0), max_bytes: None },
        );

        // Sweep twice on the cached engine so the second pass runs entirely
        // warm; all three passes must agree bit for bit.
        let warm_up = on.sweep(&reqs);
        let cached = on.sweep(&reqs);
        let uncached = off.sweep(&reqs);
        prop_assert_eq!(warm_up.failures.len(), 0);
        prop_assert_eq!(uncached.failures.len(), 0);
        let off_stats = off.cache().stats();
        prop_assert_eq!(off_stats.uniformized.hits, 0);
        prop_assert_eq!(off_stats.uniformized.entries, 0);

        prop_assert_eq!(cached.reports.len(), uncached.reports.len());
        for ((a, b), c) in cached.reports.iter().zip(&uncached.reports).zip(&warm_up.reports) {
            prop_assert_eq!(a.t, b.t);
            prop_assert_eq!(
                a.value.to_bits(),
                b.value.to_bits(),
                "cache-on {} vs cache-off {} at {} t={}",
                a.value,
                b.value,
                a.model,
                a.t
            );
            prop_assert_eq!(a.value.to_bits(), c.value.to_bits());
        }
    }
}

/// Strategy: a random sensitivity sweep — model family, scalable rate,
/// scale grid, horizons, and engine thread count all drawn at random. The
/// spec layer expands it into one rate variant per factor, all sharing one
/// generator structure.
fn arb_sensitivity() -> impl Strategy<Value = (usize, bool, usize, Vec<f64>, Vec<f64>, usize)> {
    (
        0usize..4,
        any::<bool>(),
        0usize..2,
        prop::collection::vec(0.3f64..3.0, 2..5),
        prop::collection::vec(0.1f64..1_000.0, 1..3),
        1usize..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..Default::default() })]

    /// The delta-rebind path must be invisible in the results: a
    /// sensitivity grid swept warm on one engine (every point after the
    /// first re-binds the donor's uniformization, plans, and chain facts)
    /// is bitwise identical to solving each point on a cache cleared
    /// before it (every point pays the full cold build) — across random
    /// chain families, scale grids, and thread counts.
    #[test]
    fn delta_warm_sweep_matches_cleared_cache_point_solves(
        (family, absorbing, param_idx, grid, horizons, threads) in arb_sensitivity()
    ) {
        let fmt_list = |xs: &[f64]| {
            xs.iter().map(f64::to_string).collect::<Vec<_>>().join(", ")
        };
        let (model, param) = match family {
            0 => (r#""kind": "raid", "g": 2"#.to_string(),
                  ["lambda_d", "lambda_s"][param_idx]),
            1 => (r#""kind": "two_state", "lambda": 1e-3, "mu": 1.0"#.to_string(),
                  ["lambda", "mu"][param_idx]),
            2 => (r#""kind": "duplex", "lambda": 0.01, "mu": 1.0, "coverage": 0.95"#
                      .to_string(),
                  ["lambda", "mu"][param_idx]),
            _ => (r#""kind": "machines", "machines": 4, "repairmen": 2, "lambda": 0.02, "mu": 1.0"#.to_string(),
                  ["lambda", "mu"][param_idx]),
        };
        let spec_json = format!(
            r#"{{"epsilon": 1e-10, "threads": {threads}, "horizons": [{}],
                "models": [{{{model}{}
                  , "sensitivity": {{"param": "{param}", "grid": [{}]}}}}]}}"#,
            fmt_list(&horizons),
            if absorbing && family == 0 { r#", "absorbing": true"# } else { "" },
            fmt_list(&grid),
        );
        let spec = SweepSpec::parse(&spec_json).unwrap();
        prop_assert_eq!(spec.requests.len(), grid.len());

        let warm = Engine::with_cache_config(spec.options, spec.cache);
        let cold = Engine::with_cache_config(spec.options, spec.cache);
        let mut warm_reports = Vec::new();
        let mut cold_reports = Vec::new();
        for req in &spec.requests {
            let sweep = warm.sweep(std::slice::from_ref(req));
            prop_assert_eq!(sweep.failures.len(), 0, "warm: {:?}", sweep.failures);
            warm_reports.extend(sweep.reports);
            cold.cache().clear();
            let sweep = cold.sweep(std::slice::from_ref(req));
            prop_assert_eq!(sweep.failures.len(), 0, "cold: {:?}", sweep.failures);
            cold_reports.extend(sweep.reports);
        }

        // Distinct non-unit factors after the first point must have ridden
        // the delta path (a duplicate factor is a plain full-fp hit).
        let distinct = {
            let mut f: Vec<u64> = grid.iter().map(|x| x.to_bits()).collect();
            f.sort_unstable();
            f.dedup();
            f.len()
        };
        let stats = warm.cache().stats();
        if distinct > 1 {
            prop_assert!(stats.rebinds > 0, "no rebinds on {distinct} variants: {stats:?}");
            prop_assert!(stats.derived_hits > 0, "no derived facts: {stats:?}");
        }

        prop_assert_eq!(warm_reports.len(), cold_reports.len());
        for (w, c) in warm_reports.iter().zip(&cold_reports) {
            prop_assert_eq!(&w.model, &c.model);
            prop_assert_eq!(w.t, c.t);
            prop_assert_eq!(
                w.value.to_bits(),
                c.value.to_bits(),
                "delta-warm {} vs cleared-cache {} at {} t={}",
                w.value,
                c.value,
                w.model,
                w.t
            );
        }
    }
}
