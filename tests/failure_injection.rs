//! Failure-injection tests: malformed inputs must be rejected with the
//! documented errors, never silently mis-solved.

use regenr::ctmc::{analyze, Ctmc, CtmcError};
use regenr::models::cyclic;
use regenr::prelude::*;
use regenr::sparse::CooBuilder;

#[test]
fn negative_rate_rejected_at_construction() {
    let err = Ctmc::from_rates(2, &[(0, 1, -0.5)], vec![1.0, 0.0], vec![0.0; 2]);
    assert!(matches!(err, Err(CtmcError::NegativeRate { .. })));
}

#[test]
fn non_generator_matrix_rejected() {
    // Row sums must be zero: build a raw matrix violating that.
    let mut b = CooBuilder::new(2, 2);
    b.push(0, 0, -1.0);
    b.push(0, 1, 2.0); // row sums to +1
    b.push(1, 0, 1.0);
    b.push(1, 1, -1.0);
    let err = Ctmc::new(b.build(), vec![1.0, 0.0], vec![0.0; 2]);
    assert!(matches!(
        err,
        Err(CtmcError::RowSumNonZero { state: 0, .. })
    ));
}

#[test]
fn unnormalized_initial_rejected() {
    let err = Ctmc::from_rates(2, &[(0, 1, 1.0), (1, 0, 1.0)], vec![0.6, 0.6], vec![0.0; 2]);
    assert!(matches!(err, Err(CtmcError::BadInitialDistribution { .. })));
}

#[test]
fn negative_reward_rejected() {
    let err = Ctmc::from_rates(
        2,
        &[(0, 1, 1.0), (1, 0, 1.0)],
        vec![1.0, 0.0],
        vec![-0.1, 0.0],
    );
    assert!(matches!(err, Err(CtmcError::NegativeReward { .. })));
}

#[test]
fn initial_mass_on_absorbing_rejected_by_analysis() {
    let c = Ctmc::from_rates(2, &[(0, 1, 1.0)], vec![0.4, 0.6], vec![0.0, 1.0]).unwrap();
    assert!(matches!(
        analyze(&c),
        Err(CtmcError::InitialMassOnAbsorbing { state: 1 })
    ));
    // The regenerative solvers run the same analysis up front.
    let err = RrlSolver::new(&c, 0, RrlOptions::default());
    assert!(matches!(err, Err(CtmcError::InitialMassOnAbsorbing { .. })));
}

#[test]
fn split_transient_part_rejected() {
    // Two transient states that only reach the absorbing state: S is not
    // strongly connected, violating the paper's assumption.
    let c = Ctmc::from_rates(
        3,
        &[(0, 2, 1.0), (1, 2, 1.0)],
        vec![0.5, 0.5, 0.0],
        vec![0.0, 0.0, 1.0],
    )
    .unwrap();
    assert!(matches!(
        RrSolver::new(&c, 0, RrOptions::default()),
        Err(CtmcError::NotStronglyConnected { .. })
    ));
}

#[test]
fn absorbing_regenerative_state_rejected() {
    let c = Ctmc::from_rates(2, &[(0, 1, 1.0)], vec![1.0, 0.0], vec![0.0, 1.0]).unwrap();
    for bad in [1usize, 2, 99] {
        assert!(matches!(
            RrlSolver::new(&c, bad, RrlOptions::default()),
            Err(CtmcError::BadRegenerativeState { .. })
        ));
    }
}

#[test]
fn periodic_chain_is_still_solved_correctly() {
    // The ring is periodic under θ=0 randomization: RSD must not detect a
    // bogus steady state, and RR/RRL must still produce correct values.
    let c = cyclic::ring(4);
    let sr = SrSolver::new(&c, SrOptions::default());
    let rsd = RsdSolver::new(&c, RsdOptions::default());
    let rrl = RrlSolver::new(&c, 0, RrlOptions::default()).unwrap();
    for &t in &[1.0, 7.7, 40.0] {
        let a = sr.solve(MeasureKind::Trr, t).value;
        assert!(
            (rsd.solve(MeasureKind::Trr, t).value - a).abs() < 1e-10,
            "t={t}"
        );
        assert!((rrl.trr(t).unwrap().value - a).abs() < 1e-9, "t={t}");
    }
}

#[test]
#[should_panic]
fn negative_time_panics() {
    let c = cyclic::ring(3);
    let sr = SrSolver::new(&c, SrOptions::default());
    let _ = sr.solve(MeasureKind::Trr, -1.0);
}

#[test]
fn zero_reward_chain_short_circuits() {
    let c = Ctmc::from_rates(
        2,
        &[(0, 1, 1.0), (1, 0, 1.0)],
        vec![1.0, 0.0],
        vec![0.0, 0.0],
    )
    .unwrap();
    let sr = SrSolver::new(&c, SrOptions::default());
    let s = sr.solve(MeasureKind::Trr, 1e6);
    assert_eq!(s.value, 0.0);
    assert_eq!(s.steps, 0, "r_max = 0 must not step at all");
}
