//! Direct regression tests against the figures the paper publishes:
//! model sizes, step-count tables, and the `UR(10⁵ h)` scalars.

use regenr::models::{RaidModel, RaidParams};
use regenr::prelude::*;

fn rrl(ctmc: &regenr::ctmc::Ctmc) -> RrlSolver<'_> {
    RrlSolver::new(
        ctmc,
        0,
        RrlOptions {
            regen: RegenOptions {
                epsilon: 1e-12,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn model_sizes_match_paper() {
    let g20 = RaidModel::new(RaidParams::paper(20)).build().unwrap();
    let g40 = RaidModel::new(RaidParams::paper(40)).build().unwrap();
    assert_eq!(g20.ctmc.n_states(), 3_841);
    assert_eq!(g40.ctmc.n_states(), 14_081);
}

/// Table 1 (UA measure): the paper's RR/RRL step counts, reproduced to ±2.
#[test]
fn table1_step_counts_match_paper() {
    let paper: [(u32, [usize; 6]); 2] = [
        (20, [56, 323, 2_234, 2_708, 2_938, 3_157]),
        (40, [86, 554, 4_187, 5_123, 5_549, 5_957]),
    ];
    for (g, want) in paper {
        let built = RaidModel::new(RaidParams::paper(g)).build().unwrap();
        let solver = rrl(&built.ctmc);
        for (i, &t) in [1.0, 10.0, 100.0, 1e3, 1e4, 1e5].iter().enumerate() {
            let got = solver.trr(t).unwrap().construction_steps;
            assert!(
                got.abs_diff(want[i]) <= 2,
                "G={g}, t={t}: {got} steps vs paper's {}",
                want[i]
            );
        }
    }
}

/// Table 2 (UR measure): the paper's RR/RRL step counts, reproduced to ±2.
#[test]
fn table2_step_counts_match_paper() {
    let paper: [(u32, [usize; 6]); 2] = [
        (20, [56, 323, 2_233, 2_708, 2_937, 3_157]),
        (40, [86, 554, 4_186, 5_122, 5_547, 5_955]),
    ];
    for (g, want) in paper {
        let built = RaidModel::new(RaidParams::paper(g).with_absorbing_failure())
            .build()
            .unwrap();
        let solver = rrl(&built.ctmc);
        for (i, &t) in [1.0, 10.0, 100.0, 1e3, 1e4, 1e5].iter().enumerate() {
            let got = solver.trr(t).unwrap().construction_steps;
            assert!(
                got.abs_diff(want[i]) <= 2,
                "G={g}, t={t}: {got} steps vs paper's {}",
                want[i]
            );
        }
    }
}

/// The paper's headline unreliability scalars (calibration of `P_R` used
/// only the G=20 value; G=40 is out-of-sample, see DESIGN.md §4).
#[test]
fn unreliability_scalars_match_paper() {
    for (g, want) in [(20u32, 0.50480), (40, 0.74750)] {
        let built = RaidModel::new(RaidParams::paper(g).with_absorbing_failure())
            .build()
            .unwrap();
        let got = rrl(&built.ctmc).trr(1e5).unwrap().value;
        assert!(
            (got - want).abs() < 5e-5,
            "G={g}: UR(1e5) = {got} vs paper's {want}"
        );
    }
}

/// RSD steps saturate at the detection point for t ≥ 100 h (Table 1's RSD
/// column shows the same plateau, at 2,612/4,823).
#[test]
fn rsd_steps_saturate_like_paper() {
    let built = RaidModel::new(RaidParams::paper(20)).build().unwrap();
    let rsd = RsdSolver::new(&built.ctmc, RsdOptions::default());
    let s100 = rsd.solve(MeasureKind::Trr, 100.0).steps;
    let s1e4 = rsd.solve(MeasureKind::Trr, 1e4).steps;
    let s1e5 = rsd.solve(MeasureKind::Trr, 1e5).steps;
    assert_eq!(s100, s1e4, "RSD must saturate at detection");
    assert_eq!(s100, s1e5);
    // Same order of magnitude as the paper's 2,612.
    assert!((1_500..4_000).contains(&s100), "detection step {s100}");
}

/// The paper notes the inversion consumed ~1–2% of RRL's time and used
/// 105–329 abscissae; verify the same orders of magnitude.
#[test]
fn inversion_cost_is_small_fraction() {
    let built = RaidModel::new(RaidParams::paper(20)).build().unwrap();
    let solver = rrl(&built.ctmc);
    let sol = solver.trr(1e4).unwrap();
    assert!(
        (50..=600).contains(&sol.abscissae),
        "abscissae {} outside the paper's ballpark",
        sol.abscissae
    );
    let total = (sol.construction_time + sol.inversion_time).as_secs_f64();
    let share = sol.inversion_time.as_secs_f64() / total;
    assert!(
        share < 0.25,
        "inversion share {share} should be a small fraction"
    );
}

/// ε = 1e-12 at UR(1e5) ≈ 0.5 demands ~14 significant digits from the
/// inversion — the paper's stability argument. RRL vs RR (time-domain
/// solution of the same truncated model) must agree to that level.
#[test]
fn inversion_is_stable_to_fourteen_digits() {
    let built = RaidModel::new(
        RaidParams {
            g: 4,
            ..Default::default()
        }
        .with_absorbing_failure(),
    )
    .build()
    .unwrap();
    let opts = RegenOptions {
        epsilon: 1e-12,
        ..Default::default()
    };
    let rr = RrSolver::new(&built.ctmc, 0, RrOptions { regen: opts }).unwrap();
    let rrl_s = RrlSolver::new(
        &built.ctmc,
        0,
        RrlOptions {
            regen: opts,
            ..Default::default()
        },
    )
    .unwrap();
    for &t in &[100.0, 1_000.0] {
        let a = rr.solve(MeasureKind::Trr, t).unwrap().value;
        let b = rrl_s.trr(t).unwrap().value;
        assert!(
            (a - b).abs() < 1e-12,
            "t={t}: RR {a} vs RRL {b} — inversion lost digits"
        );
    }
}

/// More hot spares must not hurt dependability (sanity of the parametric
/// model the paper varies over `G`, `C_H`, `D_H`).
#[test]
fn dependability_is_monotone_in_spares() {
    use regenr::models::{RaidModel, RaidParams};
    let ur = |c_h: u32, d_h: u32| {
        let p = RaidParams {
            g: 4,
            c_h,
            d_h,
            ..Default::default()
        }
        .with_absorbing_failure();
        let built = RaidModel::new(p).build().unwrap();
        rrl(&built.ctmc).trr(1e4).unwrap().value
    };
    let base = ur(1, 3);
    assert!(
        ur(0, 3) >= base - 1e-12,
        "fewer controller spares must not help"
    );
    assert!(ur(1, 1) >= base - 1e-12, "fewer disk spares must not help");
    assert!(ur(2, 5) <= base + 1e-12, "more spares must not hurt");
}
