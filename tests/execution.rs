//! Execution-core properties: pooled SpMV and pooled solvers are bitwise
//! identical to serial execution, and workspaces make repeated solves
//! allocation-free.
//!
//! The determinism half is the contract the CI `threads=1` vs `threads=4`
//! job checks end-to-end on the CLI; here it is a property over *random*
//! chains and sweep specs.

use proptest::prelude::*;
use regenr::ctmc::Ctmc;
use regenr::prelude::*;
use regenr::sparse::{KernelChoice, ParallelConfig};
use std::sync::Arc;

/// Strategy: a random strongly connected CTMC with 2–7 states, optionally
/// with one absorbing state, plus a random horizon grid (a miniature sweep
/// spec).
fn arb_chain_and_grid() -> impl Strategy<Value = (Ctmc, Vec<f64>)> {
    // Horizons up to 400 h cross the Λt ≈ 2000 SR threshold on the faster
    // chains, so the grids exercise the RSD/RRL dispatch arms too.
    (
        2usize..7,
        any::<bool>(),
        prop::collection::vec(0.0f64..400.0, 1..4),
    )
        .prop_flat_map(|(n, absorbing, ts)| {
            let n_rates = n * n;
            (
                prop::collection::vec(0.0f64..2.0, n_rates),
                prop::collection::vec(0.0f64..3.0, n + 1),
                Just(absorbing),
                Just(n),
                Just(ts),
            )
                .prop_map(|(raw, rewards, absorbing, n, ts)| {
                    let mut rates: Vec<(usize, usize, f64)> = Vec::new();
                    // A cycle guarantees strong connectivity of S.
                    for i in 0..n {
                        rates.push((i, (i + 1) % n, 0.5));
                    }
                    for i in 0..n {
                        for j in 0..n {
                            let r = raw[i * n + j];
                            if i != j && r > 0.25 {
                                rates.push((i, j, r));
                            }
                        }
                    }
                    let total = if absorbing { n + 1 } else { n };
                    if absorbing {
                        rates.push((1, n, 0.05));
                    }
                    let mut initial = vec![0.0; total];
                    initial[0] = 1.0;
                    let mut rw = rewards;
                    rw.truncate(total);
                    rw.resize(total, 1.0);
                    (Ctmc::from_rates(total, &rates, initial, rw).unwrap(), ts)
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Pooled SR (chunked stepping through the worker pool) is bitwise
    /// identical to strictly serial SR on random chains.
    #[test]
    fn pooled_solver_is_bitwise_serial((chain, ts) in arb_chain_and_grid()) {
        let serial = SrSolver::new(&chain, SrOptions {
            epsilon: 1e-10,
            parallel: ParallelConfig { min_nnz: usize::MAX, threads: 1, kernel: KernelChoice::Generic, ..Default::default() },
            ..Default::default()
        });
        let pooled = SrSolver::new(&chain, SrOptions {
            epsilon: 1e-10,
            // Force the pooled kernel even on these tiny matrices.
            parallel: ParallelConfig { min_nnz: 0, threads: 4, kernel: KernelChoice::Auto, ..Default::default() },
            ..Default::default()
        });
        for m in [MeasureKind::Trr, MeasureKind::Mrr] {
            let a = serial.solve_many(m, &ts);
            let b = pooled.solve_many(m, &ts);
            for ((x, y), t) in a.iter().zip(&b).zip(&ts) {
                prop_assert_eq!(
                    x.value.to_bits(), y.value.to_bits(),
                    "{:?} t={}: serial {} vs pooled {}", m, t, x.value, y.value
                );
                prop_assert_eq!(x.steps, y.steps);
            }
        }
    }

    /// Engine sweeps with 1 and 4 sweep workers produce bitwise-identical
    /// reports on random chains and horizon grids — parallel execution
    /// changes scheduling, never values.
    #[test]
    fn sweep_values_are_bitwise_identical_across_thread_counts(
        (chain, ts) in arb_chain_and_grid()
    ) {
        let model = Arc::new(chain);
        let reqs: Vec<SolveRequest> = [MeasureKind::Trr, MeasureKind::Mrr]
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                SolveRequest::new(format!("m{i}"), model.clone(), ts.clone())
                    .measure(m)
                    .epsilon(1e-10)
            })
            .collect();
        let mk = |threads| {
            Engine::with_options(EngineOptions { threads, ..Default::default() })
        };
        let one = mk(1).sweep(&reqs);
        let four = mk(4).sweep(&reqs);
        prop_assert!(one.failures.is_empty(), "{:?}", one.failures);
        prop_assert!(four.failures.is_empty(), "{:?}", four.failures);
        prop_assert_eq!(one.reports.len(), four.reports.len());
        for (a, b) in one.reports.iter().zip(&four.reports) {
            prop_assert_eq!(&a.model, &b.model);
            prop_assert_eq!(a.t.to_bits(), b.t.to_bits());
            prop_assert_eq!(a.method, b.method);
            prop_assert_eq!(
                a.value.to_bits(), b.value.to_bits(),
                "{} t={}: 1-thread {} vs 4-thread {}", a.model, a.t, a.value, b.value
            );
            prop_assert_eq!(a.steps, b.steps);
        }
    }
}

/// Workspace reuse across an engine-shaped workload: repeated `solve_many`
/// calls through one workspace stop allocating after warm-up, for every
/// solver the engine dispatches to.
#[test]
fn workspaces_stop_allocating_after_warmup() {
    let chain = regenr::models::two_state::repairable_unit(1e-3, 1.0);
    let ts = [1.0, 50.0, 500.0];
    let mut ws = Workspace::new();

    let sr = SrSolver::new(
        &chain,
        SrOptions {
            epsilon: 1e-10,
            ..Default::default()
        },
    );
    let rsd = RsdSolver::new(
        &chain,
        RsdOptions {
            epsilon: 1e-10,
            ..Default::default()
        },
    );
    let rrl = RrlSolver::new(
        &chain,
        0,
        RrlOptions {
            regen: RegenOptions {
                epsilon: 1e-10,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();

    // Warm-up round: every solver sizes its scratch.
    sr.solve_many_with(MeasureKind::Trr, &ts, &mut ws);
    for &t in &ts {
        rsd.solve_report_with(MeasureKind::Trr, t, &mut ws);
    }
    rrl.solve_many_with(MeasureKind::Trr, &ts, &mut ws).unwrap();
    let warm = ws.stats();

    for _ in 0..3 {
        sr.solve_many_with(MeasureKind::Trr, &ts, &mut ws);
        for &t in &ts {
            rsd.solve_report_with(MeasureKind::Trr, t, &mut ws);
        }
        rrl.solve_many_with(MeasureKind::Trr, &ts, &mut ws).unwrap();
    }
    let after = ws.stats();
    assert!(after.takes > warm.takes, "solvers must draw scratch");
    assert_eq!(
        after.fresh_allocs, warm.fresh_allocs,
        "no steady-state growth: every post-warm-up take must be a reuse \
         (warm {warm:?}, after {after:?})"
    );
}
