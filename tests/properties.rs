//! Property-based tests over randomly generated CTMCs.
//!
//! The central invariant of the whole repository: on *any* chain satisfying
//! the paper's assumptions, the transformed-model methods (RR, RRL) agree
//! with standard randomization within the error budgets, for both measures.

use proptest::prelude::*;
use regenr::ctmc::Ctmc;
use regenr::prelude::*;

/// Strategy: a random strongly connected CTMC with 2–7 states, a random
/// reward structure, and optionally one absorbing state reachable from S.
fn arb_chain() -> impl Strategy<Value = (Ctmc, f64)> {
    (2usize..7, any::<bool>(), 0.1f64..50.0).prop_flat_map(|(n, absorbing, t)| {
        let n_rates = n * n;
        (
            prop::collection::vec(0.0f64..2.0, n_rates),
            prop::collection::vec(0.0f64..3.0, n + 1),
            Just(absorbing),
            Just(n),
            Just(t),
        )
            .prop_map(|(raw, rewards, absorbing, n, t)| {
                let mut rates: Vec<(usize, usize, f64)> = Vec::new();
                // A cycle guarantees strong connectivity of S = {0..n-1}.
                for i in 0..n {
                    rates.push((i, (i + 1) % n, 0.5));
                }
                for i in 0..n {
                    for j in 0..n {
                        let r = raw[i * n + j];
                        if i != j && r > 0.25 {
                            rates.push((i, j, r));
                        }
                    }
                }
                let total = if absorbing { n + 1 } else { n };
                if absorbing {
                    // One absorbing state fed from state 1 at a slow rate.
                    rates.push((1, n, 0.05));
                }
                let mut initial = vec![0.0; total];
                initial[0] = 1.0;
                let mut rw = rewards;
                rw.truncate(total);
                rw.resize(total, 1.0);
                (Ctmc::from_rates(total, &rates, initial, rw).unwrap(), t)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// RRL == SR on random chains (TRR).
    #[test]
    fn rrl_matches_sr_trr((chain, t) in arb_chain()) {
        let eps = 1e-10;
        let sr = SrSolver::new(&chain, SrOptions { epsilon: eps, ..Default::default() });
        let rrl = RrlSolver::new(
            &chain, 0,
            RrlOptions { regen: RegenOptions { epsilon: eps, ..Default::default() }, ..Default::default() },
        ).unwrap();
        let a = sr.solve(MeasureKind::Trr, t).value;
        let b = rrl.trr(t).unwrap().value;
        prop_assert!((a - b).abs() < 1e-8, "t={t}: SR {a} vs RRL {b}");
    }

    /// RR == SR on random chains (MRR).
    #[test]
    fn rr_matches_sr_mrr((chain, t) in arb_chain()) {
        let eps = 1e-10;
        let sr = SrSolver::new(&chain, SrOptions { epsilon: eps, ..Default::default() });
        let rr = RrSolver::new(
            &chain, 0,
            RrOptions { regen: RegenOptions { epsilon: eps, ..Default::default() } },
        ).unwrap();
        let a = sr.solve(MeasureKind::Mrr, t).value;
        let b = rr.solve(MeasureKind::Mrr, t).unwrap().value;
        prop_assert!((a - b).abs() < 1e-8, "t={t}: SR {a} vs RR {b}");
    }

    /// Measures are bounded by r_max and MRR(t) lies between 0 and r_max.
    #[test]
    fn measures_respect_reward_bounds((chain, t) in arb_chain()) {
        let sr = SrSolver::new(&chain, SrOptions::default());
        let r_max = chain.max_reward();
        for m in [MeasureKind::Trr, MeasureKind::Mrr] {
            let v = sr.solve(m, t).value;
            prop_assert!(v >= -1e-9 && v <= r_max + 1e-9, "{m:?} = {v}, r_max = {r_max}");
        }
    }

    /// The regenerative parameters satisfy their conservation law on random
    /// chains: u(k) + Σ_i y_i(k) + a(k+1) = a(k).
    #[test]
    fn regen_parameters_conserve_mass((chain, t) in arb_chain()) {
        let params = RegenParams::compute(&chain, 0, t, &RegenOptions::default()).unwrap();
        let m = &params.main;
        for k in 0..m.u.len() {
            let absorbed: f64 = m.y.iter().map(|yi| yi[k]).sum();
            let lhs = m.u[k] + absorbed + m.a[k + 1];
            prop_assert!((lhs - m.a[k]).abs() < 1e-12 * m.a[k].max(1e-30),
                "k={k}: {lhs} vs {}", m.a[k]);
        }
        // a(k) non-increasing.
        for k in 1..m.a.len() {
            prop_assert!(m.a[k] <= m.a[k-1] * (1.0 + 1e-14));
        }
    }
}
