//! Cross-method integration tests: every solver must agree on every model
//! within the error budgets, including the paper's RAID workloads.

use regenr::models::redundant::duplex_with_coverage;
use regenr::models::{two_state, RaidModel, RaidParams};
use regenr::prelude::*;
use regenr::transient::{AdaptiveOptions, AdaptiveSolver, OdeOptions, OdeSolver};

const EPS: f64 = 1e-11;

fn regen_opts() -> RegenOptions {
    RegenOptions {
        epsilon: EPS,
        ..Default::default()
    }
}

fn all_trr(ctmc: &regenr::ctmc::Ctmc, r: usize, t: f64) -> Vec<(&'static str, f64)> {
    let sr = SrSolver::new(
        ctmc,
        SrOptions {
            epsilon: EPS,
            ..Default::default()
        },
    );
    let rsd = RsdSolver::new(
        ctmc,
        RsdOptions {
            epsilon: EPS,
            ..Default::default()
        },
    );
    let ad = AdaptiveSolver::new(
        ctmc,
        AdaptiveOptions {
            epsilon: EPS,
            ..Default::default()
        },
    );
    let rr = RrSolver::new(
        ctmc,
        r,
        RrOptions {
            regen: regen_opts(),
        },
    )
    .unwrap();
    let rrl = RrlSolver::new(
        ctmc,
        r,
        RrlOptions {
            regen: regen_opts(),
            ..Default::default()
        },
    )
    .unwrap();
    vec![
        ("SR", sr.solve(MeasureKind::Trr, t).value),
        ("RSD", rsd.solve(MeasureKind::Trr, t).value),
        ("adaptive", ad.solve(MeasureKind::Trr, t).value),
        ("RR", rr.solve(MeasureKind::Trr, t).unwrap().value),
        ("RRL", rrl.trr(t).unwrap().value),
    ]
}

fn assert_all_close(results: &[(&'static str, f64)], tol: f64, ctx: &str) {
    let (_, reference) = results[0];
    for &(name, v) in results {
        assert!(
            (v - reference).abs() < tol,
            "{ctx}: {name} gives {v}, SR gives {reference}"
        );
    }
}

#[test]
fn five_solvers_agree_on_two_state() {
    let c = two_state::repairable_unit(2e-3, 0.8);
    for &t in &[0.5, 5.0, 500.0] {
        let r = all_trr(&c, 0, t);
        assert_all_close(&r, 1e-9, &format!("two-state t={t}"));
        // And against the closed form.
        let exact = two_state::unavailability(2e-3, 0.8, t);
        assert!((r[0].1 - exact).abs() < 1e-10);
    }
}

#[test]
fn five_solvers_agree_on_duplex() {
    let c = duplex_with_coverage(0.02, 0.5, 0.93);
    for &t in &[1.0, 50.0] {
        assert_all_close(&all_trr(&c, 0, t), 1e-9, &format!("duplex t={t}"));
    }
}

#[test]
fn solvers_agree_on_small_raid_availability() {
    // A small instance keeps SR affordable while exercising the full
    // transition catalogue.
    let built = RaidModel::new(RaidParams {
        g: 4,
        ..Default::default()
    })
    .build()
    .unwrap();
    for &t in &[1.0, 20.0] {
        assert_all_close(&all_trr(&built.ctmc, 0, t), 1e-9, &format!("raid4 t={t}"));
    }
}

#[test]
fn solvers_agree_on_small_raid_unreliability() {
    let built = RaidModel::new(
        RaidParams {
            g: 4,
            ..Default::default()
        }
        .with_absorbing_failure(),
    )
    .build()
    .unwrap();
    for &t in &[1.0, 20.0] {
        assert_all_close(
            &all_trr(&built.ctmc, 0, t),
            1e-9,
            &format!("raid4-UR t={t}"),
        );
    }
}

#[test]
fn mrr_agrees_across_methods() {
    let c = duplex_with_coverage(0.02, 0.5, 0.93);
    let sr = SrSolver::new(
        &c,
        SrOptions {
            epsilon: EPS,
            ..Default::default()
        },
    );
    let rr = RrSolver::new(
        &c,
        0,
        RrOptions {
            regen: regen_opts(),
        },
    )
    .unwrap();
    let rrl = RrlSolver::new(
        &c,
        0,
        RrlOptions {
            regen: regen_opts(),
            ..Default::default()
        },
    )
    .unwrap();
    for &t in &[0.5, 10.0, 100.0] {
        let a = sr.solve(MeasureKind::Mrr, t).value;
        let b = rr.solve(MeasureKind::Mrr, t).unwrap().value;
        let c2 = rrl.mrr(t).unwrap().value;
        assert!((a - b).abs() < 1e-9, "t={t}: SR {a} vs RR {b}");
        assert!((a - c2).abs() < 1e-9, "t={t}: SR {a} vs RRL {c2}");
    }
}

#[test]
fn ode_oracle_agrees_on_dense_path() {
    // Independent numerical family (adaptive RK4(5) on the dense generator).
    let built = RaidModel::new(RaidParams {
        g: 2,
        ..Default::default()
    })
    .build()
    .unwrap();
    let ode = OdeSolver::new(
        &built.ctmc,
        OdeOptions {
            tol: 1e-12,
            ..Default::default()
        },
    );
    let sr = SrSolver::new(
        &built.ctmc,
        SrOptions {
            epsilon: 1e-13,
            ..Default::default()
        },
    );
    for &t in &[0.5, 5.0] {
        let a = ode.solve(MeasureKind::Trr, t).value;
        let b = sr.solve(MeasureKind::Trr, t).value;
        assert!((a - b).abs() < 1e-9, "t={t}: ode {a} vs sr {b}");
    }
}

#[test]
fn rrl_handles_paper_scale_horizons() {
    // At t = 1e5 h SR would need ~4.4e6 steps; RRL stays in the thousands
    // and returns in well under a second.
    let built = RaidModel::new(RaidParams::paper(20)).build().unwrap();
    let rrl = RrlSolver::new(
        &built.ctmc,
        0,
        RrlOptions {
            regen: RegenOptions {
                epsilon: 1e-12,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let sol = rrl.trr(1e5).unwrap();
    assert!(sol.inversion_converged);
    assert!(sol.construction_steps < 4000);
    // Long-run unavailability of the G=20 system (regression value computed
    // by RSD and RRL independently).
    assert!((sol.value - 2.811109e-5).abs() < 1e-9);
}
