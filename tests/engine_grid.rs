//! Engine integration tests: the paper's RAID workloads through `Auto`
//! dispatch, artifact-cache reuse across requests, and the cross-method
//! agreement property on the small closed-form models.

use regenr::engine::{report_to_json, DispatchReason, SweepSpec};
use regenr::models::{two_state, RaidModel, RaidParams};
use regenr::prelude::*;
use std::sync::Arc;

const T_GRID: [f64; 6] = [1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0];

/// The headline acceptance scenario: both paper workloads (irreducible UA,
/// absorbing UR) across the full horizon grid, solved with `method: Auto`.
/// The engine must pick SR at small `Λt`, RSD for the irreducible model and
/// RRL for the absorbing one at large `Λt`, and a *second* solve of the same
/// model fingerprint must reuse the cached uniformization.
#[test]
fn raid_grid_dispatches_and_caches() {
    let ua = Arc::new(RaidModel::new(RaidParams::paper(20)).build().unwrap().ctmc);
    let ur = Arc::new(
        RaidModel::new(RaidParams::paper(20).with_absorbing_failure())
            .build()
            .unwrap()
            .ctmc,
    );

    let engine = Engine::new();
    let sweep = engine.sweep(&[
        SolveRequest::new("raid_g20_ua", ua.clone(), T_GRID.to_vec()),
        SolveRequest::new("raid_g20_ur", ur.clone(), T_GRID.to_vec()),
    ]);
    assert!(sweep.failures.is_empty(), "{:?}", sweep.failures);
    assert_eq!(sweep.reports.len(), 12);

    let opts = *engine.options();
    for r in &sweep.reports {
        // Mirror the documented dispatch ladder — tiny Λt on a large sparse
        // model → active-set, small Λt → SR, then RSD/RRL by structure —
        // using the *cell's own* model (the UA/UR variants may diverge in
        // Λ or state count if the grid is ever reparameterized).
        let model = if r.model == "raid_g20_ua" { &ua } else { &ur };
        let lambda = model.generator().max_abs_diag();
        let expect =
            if lambda * r.t <= opts.tiny_lambda_t && model.n_states() >= opts.adaptive_min_states {
                (Method::Adaptive, DispatchReason::TinyHorizonActiveSet)
            } else if lambda * r.t <= opts.small_lambda_t {
                (Method::Sr, DispatchReason::SmallHorizon)
            } else if r.model == "raid_g20_ua" {
                (Method::Rsd, DispatchReason::IrreducibleSteadyState)
            } else {
                (Method::Rrl, DispatchReason::StiffLargeHorizon)
            };
        assert_eq!((r.method, r.reason), expect, "cell {} t={}", r.model, r.t);
        assert!(r.converged, "cell {} t={} did not converge", r.model, r.t);
    }
    // The paper's regimes must actually occur on this grid (plus the
    // active-set regime this engine adds at tiny Λt).
    assert!(sweep.reports.iter().any(|r| r.method == Method::Adaptive));
    assert!(sweep.reports.iter().any(|r| r.method == Method::Sr));
    assert!(sweep.reports.iter().any(|r| r.method == Method::Rsd));
    assert!(sweep.reports.iter().any(|r| r.method == Method::Rrl));

    // Headline scalar: UR(1e5 h) = 0.50480 at G = 20.
    let headline = sweep
        .reports
        .iter()
        .find(|r| r.model == "raid_g20_ur" && r.t == 1e5)
        .unwrap();
    assert!(
        (headline.value - 0.50480).abs() < 5e-6,
        "UR(1e5) = {}",
        headline.value
    );

    // Second solve of the same fingerprints: every cell must hit the
    // uniformization cache — no chain is re-uniformized.
    let before = engine.cache().stats();
    let again = engine.sweep(&[
        SolveRequest::new("raid_g20_ua#2", ua, T_GRID.to_vec()),
        SolveRequest::new("raid_g20_ur#2", ur, T_GRID.to_vec()),
    ]);
    assert!(again.failures.is_empty());
    assert!(
        again.reports.iter().all(|r| r.unif_cache_hit),
        "every repeated cell must reuse the cached uniformization"
    );
    assert_eq!(
        again.cache.uniformized.misses, before.uniformized.misses,
        "no new uniformization may be built on the repeat sweep"
    );
    assert!(again.cache.uniformized.hits > before.uniformized.hits);
    // RRL's killed-chain parameters are reused too (UR grid, same ε).
    assert!(again.cache.regen_params.hits > before.regen_params.hits);

    // The values of the repeat sweep are identical (same artifacts, same
    // arithmetic).
    for (a, b) in sweep.reports.iter().zip(&again.reports) {
        assert_eq!(a.value, b.value, "t={} {}", a.t, a.model);
    }
}

/// Cross-method property: on the closed-form two-state model and the cyclic
/// model, every method capable of the cell agrees within the error budgets.
#[test]
fn capable_methods_agree_on_small_models() {
    let eps = 1e-10;
    let tol = 1e-8;
    let models: [(&str, Arc<regenr::ctmc::Ctmc>); 3] = [
        ("two_state", Arc::new(two_state::repairable_unit(0.3, 1.7))),
        (
            "two_state_absorbing",
            Arc::new(two_state::non_repairable_unit(0.37)),
        ),
        ("cyclic", Arc::new(regenr::models::cyclic::ring(5))),
    ];
    let engine = Engine::new();
    for (name, model) in models {
        let absorbing = !model.absorbing_states().is_empty();
        for measure in [MeasureKind::Trr, MeasureKind::Mrr] {
            for t in [0.5, 5.0, 50.0] {
                let mut values: Vec<(Method, f64, f64)> = Vec::new();
                for method in regenr::engine::ALL_METHODS {
                    if absorbing && !method.capabilities().supports_absorbing {
                        continue;
                    }
                    let req = SolveRequest::new(name, model.clone(), vec![t])
                        .measure(measure)
                        .epsilon(eps)
                        .method(MethodChoice::Fixed(method));
                    let report = engine.solve(&req).unwrap().remove(0);
                    values.push((method, report.value, report.error_bound));
                }
                assert!(values.len() >= 5, "{name}: too few capable methods ran");
                let (m0, v0, _) = values[0];
                for &(m, v, _) in &values[1..] {
                    assert!(
                        (v - v0).abs() < tol,
                        "{name} {measure:?} t={t}: {m} = {v} vs {m0} = {v0}"
                    );
                }
            }
        }
    }
}

/// The CLI path: a JSON spec parses, sweeps, and serializes to a report
/// document with the expected cells.
#[test]
fn json_spec_roundtrip() {
    let spec = SweepSpec::parse(
        r#"{
            "epsilon": 1e-10,
            "horizons": [1, 10000],
            "models": [
                {"kind": "two_state", "lambda": 1e-3, "mu": 1.0},
                {"kind": "duplex", "lambda": 0.01, "mu": 1.0, "coverage": 0.95,
                 "measures": ["trr", "mrr"]}
            ]
        }"#,
    )
    .unwrap();
    assert_eq!(spec.requests.len(), 3);
    let engine = Engine::with_options(spec.options);
    let sweep = engine.sweep(&spec.requests);
    assert!(sweep.failures.is_empty(), "{:?}", sweep.failures);
    assert_eq!(sweep.reports.len(), 6);

    let doc = report_to_json(&sweep);
    let parsed = regenr::engine::Json::parse(&doc.to_string()).unwrap();
    let cells = parsed.get("reports").unwrap().as_arr().unwrap();
    assert_eq!(cells.len(), 6);
    assert_eq!(cells[0].get("model").unwrap().as_str(), Some("two_state"));
    assert!(cells[0].get("value").unwrap().as_f64().is_some());
    // The two-state closed form survives the JSON round trip.
    let ua1 = cells[0].get("value").unwrap().as_f64().unwrap();
    assert!((ua1 - two_state::unavailability(1e-3, 1.0, 1.0)).abs() < 1e-9);
}
